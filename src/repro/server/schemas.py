"""Request/response schemas: one validated value per endpoint.

The wire format of ``POST /v1/solve`` mirrors one ``solve --stream`` JSONL
record, lifted into an object so a request can carry its own task and
options::

    {"problem": "(0 + (1 * 2))", "task": "path_cover",
     "options": {"backend": "fast"}}

``problem`` accepts everything :func:`repro.api.as_problem` does over JSON
— cotree text, a serialised cotree/graph object, an edge list, an
adjacency dict, a 0/1 bit vector for bit-input tasks — with one deliberate
exception: **file paths are refused**.  A network peer must never make the
server read its local filesystem.

``POST /v1/solve_batch`` takes either a JSON array of such records or::

    {"problems": [...], "task": "max_clique", "options": {...}}

where ``task``/``options`` are defaults for records that do not carry
their own, and each entry of ``problems`` may be a full record or a bare
problem value.

Both endpoints also negotiate the zero-copy binary wire format: a body
sent with ``Content-Type: application/octet-stream`` is one
:mod:`repro.io.wire` buffer (``/v1/solve``) or a stream of
length-prefixed wire frames (``/v1/solve_batch``), with ``task`` and a
JSON-encoded ``options`` object carried in the query string since a
binary body has nowhere to put them.  Wire bytes are decoded entirely
in memory — they never touch the server's filesystem, preserving the
no-file-paths stance above.

Validation failures never raise bare exceptions at the caller: they
collect into a :class:`SchemaError` holding *field-level* records
(``[{"field": "options.backend", "error": "..."}]``) that the app layer
returns as a structured ``400`` body.
"""

from __future__ import annotations

import io
import json
import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple
from urllib.parse import parse_qs

from ..api import SolveOptions, as_problem, task_names
from ..api.adapters import Problem

__all__ = ["SchemaError", "SolveRequest", "parse_solve_request",
           "parse_batch_request", "parse_wire_solve_request",
           "parse_wire_batch_request"]

#: options fields a request may set.  ``cache`` (a live object) and
#: ``batch_small`` (routing policy) belong to the *server's* settings, not
#: to a request — accepting them per-request would let one caller disable
#: or bloat shared infrastructure.
_FORBIDDEN_OPTIONS = ("cache", "batch_small")


class SchemaError(ValueError):
    """A request failed validation; ``errors`` lists field-level records."""

    def __init__(self, errors: List[Dict[str, str]]) -> None:
        self.errors = list(errors)
        super().__init__("; ".join(
            f"{e['field']}: {e['error']}" for e in self.errors)
            or "invalid request")

    @classmethod
    def single(cls, field_name: str, message: str) -> "SchemaError":
        return cls([{"field": field_name, "error": message}])


@dataclass
class SolveRequest:
    """One validated solve request, ready for dispatch.

    ``problem`` is already adapted (so schema errors surface as 400s, not
    as worker crashes) and ``options`` is already a validated
    :class:`~repro.api.SolveOptions` with no cache attached — the server
    owns the shared cache.
    """

    problem: Problem
    task: str = "path_cover"
    options: SolveOptions = field(default_factory=SolveOptions)


def _parse_options(data: Any, field_name: str) -> SolveOptions:
    if not isinstance(data, dict):
        raise SchemaError.single(
            field_name, f"must be an object of SolveOptions fields, "
                        f"got {type(data).__name__}")
    errors = []
    for name in _FORBIDDEN_OPTIONS:
        if name in data:
            errors.append({"field": f"{field_name}.{name}",
                           "error": "a request cannot set this; it is "
                                    "server configuration"})
    if errors:
        raise SchemaError(errors)
    try:
        return SolveOptions.from_dict(data)
    except (ValueError, TypeError) as exc:
        raise SchemaError.single(field_name, str(exc)) from None


def _parse_problem(value: Any, task: str, field_name: str) -> Problem:
    if isinstance(value, str) and os.path.exists(value):
        raise SchemaError.single(
            field_name, "file paths are not accepted over the network; "
                        "send the instance inline (cotree text, a "
                        "serialised object, an edge list, ...)")
    try:
        return as_problem(value, task=task)
    except (ValueError, TypeError) as exc:
        raise SchemaError.single(field_name, str(exc)) from None


def _parse_task(value: Any, field_name: str) -> str:
    if not isinstance(value, str) or value not in task_names():
        raise SchemaError.single(
            field_name, f"unknown task {value!r}; one of "
                        f"{', '.join(task_names())}")
    return value


def parse_solve_request(data: Any, *, prefix: str = "",
                        default_task: Optional[str] = None,
                        default_options: Optional[SolveOptions] = None,
                        ) -> SolveRequest:
    """Validate one ``/v1/solve`` body (or one batch record).

    Raises :class:`SchemaError` carrying every field-level problem found
    (missing ``problem``, unknown ``task``, bad ``options`` fields,
    unadaptable instance, unknown top-level keys).
    """
    dot = prefix + "." if prefix else ""
    if not isinstance(data, dict):
        # a bare value is taken as the problem itself (the JSONL shape)
        data = {"problem": data}
    unknown = set(data) - {"problem", "task", "options"}
    if unknown:
        raise SchemaError([
            {"field": dot + name, "error": "unknown field"}
            for name in sorted(unknown)])
    errors: List[Dict[str, str]] = []
    task = default_task or "path_cover"
    if "task" in data:
        try:
            task = _parse_task(data["task"], dot + "task")
        except SchemaError as exc:
            errors.extend(exc.errors)
    options = default_options if default_options is not None \
        else SolveOptions()
    if "options" in data:
        try:
            options = _parse_options(data["options"], dot + "options")
        except SchemaError as exc:
            errors.extend(exc.errors)
    problem: Optional[Problem] = None
    if "problem" not in data:
        errors.append({"field": dot + "problem", "error": "is required"})
    elif not errors:
        try:
            problem = _parse_problem(data["problem"], task, dot + "problem")
        except SchemaError as exc:
            errors.extend(exc.errors)
    if errors:
        raise SchemaError(errors)
    return SolveRequest(problem=problem, task=task, options=options)


def parse_batch_request(data: Any, *, max_batch: int) -> List[SolveRequest]:
    """Validate one ``/v1/solve_batch`` body into a list of requests.

    Accepts a JSON array of records, or an object with ``problems`` plus
    optional ``task``/``options`` defaults.  Every record's errors are
    collected (indexed like ``problems[3].options.backend``) before
    anything is solved, so a bad batch is rejected whole.
    """
    default_task: Optional[str] = None
    default_options: Optional[SolveOptions] = None
    errors: List[Dict[str, str]] = []
    if isinstance(data, dict):
        unknown = set(data) - {"problems", "task", "options"}
        if unknown:
            raise SchemaError([
                {"field": name, "error": "unknown field"}
                for name in sorted(unknown)])
        if "problems" not in data:
            raise SchemaError.single("problems", "is required")
        if "task" in data:
            try:
                default_task = _parse_task(data["task"], "task")
            except SchemaError as exc:
                errors.extend(exc.errors)
        if "options" in data:
            try:
                default_options = _parse_options(data["options"], "options")
            except SchemaError as exc:
                errors.extend(exc.errors)
        records = data["problems"]
    else:
        records = data
    if not isinstance(records, list):
        raise SchemaError(errors + [
            {"field": "problems",
             "error": f"must be a list of records, "
                      f"got {type(records).__name__}"}])
    if len(records) > max_batch:
        raise SchemaError(errors + [
            {"field": "problems",
             "error": f"too many records ({len(records)} > "
                      f"max_batch={max_batch})"}])
    if not records:
        raise SchemaError(errors + [
            {"field": "problems", "error": "must not be empty"}])
    requests: List[SolveRequest] = []
    for i, record in enumerate(records):
        try:
            requests.append(parse_solve_request(
                record, prefix=f"problems[{i}]",
                default_task=default_task,
                default_options=default_options))
        except SchemaError as exc:
            errors.extend(exc.errors)
    if errors:
        raise SchemaError(errors)
    return requests


# --------------------------------------------------------------------------- #
# binary wire bodies (Content-Type: application/octet-stream)
# --------------------------------------------------------------------------- #

def _parse_query_defaults(query: str) -> Tuple[str, SolveOptions]:
    """``task``/``options`` from the query string of a binary request."""
    errors: List[Dict[str, str]] = []
    params: Dict[str, str] = {}
    for name, values in parse_qs(query, keep_blank_values=True).items():
        if name not in ("task", "options"):
            errors.append({"field": f"?{name}",
                           "error": "unknown query parameter; binary "
                                    "requests accept ?task= and ?options="})
        else:
            params[name] = values[-1]
    task = "path_cover"
    if "task" in params:
        try:
            task = _parse_task(params["task"], "?task")
        except SchemaError as exc:
            errors.extend(exc.errors)
    options = SolveOptions()
    if "options" in params:
        try:
            data = json.loads(params["options"])
        except json.JSONDecodeError as exc:
            errors.append({"field": "?options",
                           "error": f"must be a JSON object of SolveOptions "
                                    f"fields: {exc}"})
        else:
            try:
                options = _parse_options(data, "?options")
            except SchemaError as exc:
                errors.extend(exc.errors)
    if errors:
        raise SchemaError(errors)
    return task, options


def _wire_problem(payload: bytes, task: str, field_name: str) -> Problem:
    """Adapt one wire buffer; forests are a batch shape, not a solve."""
    problem = _parse_problem(payload, task, field_name)
    from ..cograph.forest import FlatForest
    if isinstance(problem.tree, FlatForest):
        raise SchemaError.single(
            field_name, "a forest wire container holds many instances; "
                        "send it to /v1/solve_batch as framed trees, or "
                        "one tree per request here")
    return problem


def parse_wire_solve_request(body: bytes, query: str = "") -> SolveRequest:
    """Validate one binary ``/v1/solve`` body (a single wire buffer).

    ``task``/``options`` ride in the query string (``?task=...&options=
    <json>``) since an octet-stream body has no envelope.  The buffer is
    decoded entirely in memory; it is never written to disk.
    """
    task, options = _parse_query_defaults(query)
    if not body:
        raise SchemaError.single(
            "body", "request body is required (a repro wire buffer; see "
                    "repro.io.wire.to_bytes)")
    problem = _wire_problem(body, task, "body")
    return SolveRequest(problem=problem, task=task, options=options)


def parse_wire_batch_request(body: bytes, query: str = "", *,
                             max_batch: int) -> List[SolveRequest]:
    """Validate one binary ``/v1/solve_batch`` body.

    The body is a stream of length-prefixed wire frames (the exact bytes
    ``solve --stream --format binary`` reads), one instance per frame,
    sharing the query-string ``task``/``options`` defaults.
    """
    task, options = _parse_query_defaults(query)
    if not body:
        raise SchemaError.single(
            "body", "request body is required (length-prefixed repro wire "
                    "frames; see repro.io.wire.frame)")
    from ..io.wire import read_frames
    try:
        payloads = list(read_frames(io.BytesIO(body)))
    except ValueError as exc:
        raise SchemaError.single("body", str(exc)) from None
    if not payloads:
        raise SchemaError.single("body", "must contain at least one frame")
    if len(payloads) > max_batch:
        raise SchemaError.single(
            "body", f"too many frames ({len(payloads)} > "
                    f"max_batch={max_batch})")
    errors: List[Dict[str, str]] = []
    requests: List[SolveRequest] = []
    for i, payload in enumerate(payloads):
        try:
            requests.append(SolveRequest(
                problem=_wire_problem(payload, task, f"frames[{i}]"),
                task=task, options=options))
        except SchemaError as exc:
            errors.extend(exc.errors)
    if errors:
        raise SchemaError(errors)
    return requests
