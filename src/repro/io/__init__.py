"""Serialisation (JSON / compact text) and ASCII rendering."""

from .drawing import (
    render_binary_cotree,
    render_binary_tree,
    render_cotree,
    render_cover,
    render_forest,
)
from .serialization import (
    cotree_from_json,
    cotree_from_text,
    cotree_to_json,
    cotree_to_text,
    cover_from_json,
    cover_to_json,
    graph_from_json,
    graph_to_json,
    load_json,
    save_json,
)

__all__ = [
    "cotree_to_json", "cotree_from_json", "cotree_to_text", "cotree_from_text",
    "cover_to_json", "cover_from_json", "graph_to_json", "graph_from_json",
    "save_json", "load_json",
    "render_cotree", "render_binary_cotree", "render_binary_tree",
    "render_forest", "render_cover",
]
