"""Serialisation (JSON / compact text / zero-copy binary wire) and ASCII
rendering."""

from .drawing import (
    render_binary_cotree,
    render_binary_tree,
    render_cotree,
    render_cover,
    render_forest,
)
from .serialization import (
    cotree_from_json,
    cotree_from_text,
    cotree_to_json,
    cotree_to_text,
    cover_from_json,
    cover_to_json,
    graph_from_json,
    graph_to_json,
    load_json,
    save_json,
)
from .wire import (
    frame,
    from_bytes,
    read_frames,
    to_bytes,
)
from .wire import load as load_wire
from .wire import save as save_wire

__all__ = [
    "cotree_to_json", "cotree_from_json", "cotree_to_text", "cotree_from_text",
    "cover_to_json", "cover_from_json", "graph_to_json", "graph_from_json",
    "save_json", "load_json",
    "to_bytes", "from_bytes", "save_wire", "load_wire", "frame",
    "read_frames",
    "render_cotree", "render_binary_cotree", "render_binary_tree",
    "render_forest", "render_cover",
]
