"""ASCII rendering of cotrees, path trees and covers.

Used by the figure-gallery example to regenerate the paper's illustrative
figures in text form, and by error messages in the tests.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Union

from ..cograph import BinaryCotree, Cotree, PathCover
from ..cograph.cotree import JOIN, LEAF, UNION

__all__ = ["render_cotree", "render_binary_tree", "render_forest",
           "render_cover"]


def _default_leaf_name(vertex: int, names: Optional[Sequence[str]]) -> str:
    if names is not None and 0 <= vertex < len(names):
        return str(names[vertex])
    return f"v{vertex}"


def render_cotree(tree: Cotree, names: Optional[Sequence[str]] = None) -> str:
    """Indented ASCII rendering of a (general) cotree."""
    lines: List[str] = []

    def label(u: int) -> str:
        if tree.kind[u] == LEAF:
            return _default_leaf_name(int(tree.leaf_vertex[u]), names)
        return "(1)" if tree.kind[u] == JOIN else "(0)"

    def rec(u: int, prefix: str, is_last: bool) -> None:
        connector = "`-- " if is_last else "|-- "
        lines.append(prefix + connector + label(u))
        child_prefix = prefix + ("    " if is_last else "|   ")
        cs = tree.children[u]
        for i, c in enumerate(cs):
            rec(c, child_prefix, i == len(cs) - 1)

    lines.append(label(tree.root))
    cs = tree.children[tree.root]
    for i, c in enumerate(cs):
        rec(c, "", i == len(cs) - 1)
    return "\n".join(lines)


def render_binary_tree(left, right, root: int,
                       label: Callable[[int], str]) -> str:
    """Indented ASCII rendering of a binary tree given child arrays."""
    lines: List[str] = []

    def rec(u: int, prefix: str, tag: str, is_last: bool) -> None:
        connector = "`-- " if is_last else "|-- "
        lines.append(prefix + connector + tag + label(u))
        child_prefix = prefix + ("    " if is_last else "|   ")
        children = []
        if left[u] != -1:
            children.append(("L:", int(left[u])))
        if right[u] != -1:
            children.append(("R:", int(right[u])))
        for i, (t, c) in enumerate(children):
            rec(c, child_prefix, t, i == len(children) - 1)

    lines.append(label(int(root)))
    children = []
    if left[root] != -1:
        children.append(("L:", int(left[root])))
    if right[root] != -1:
        children.append(("R:", int(right[root])))
    for i, (t, c) in enumerate(children):
        rec(c, "", t, i == len(children) - 1)
    return "\n".join(lines)


def render_binary_cotree(tree: BinaryCotree,
                         names: Optional[Sequence[str]] = None) -> str:
    """ASCII rendering of a binarized cotree."""
    def label(u: int) -> str:
        if tree.kind[u] == LEAF:
            return _default_leaf_name(int(tree.leaf_vertex[u]), names)
        return "(1)" if tree.kind[u] == JOIN else "(0)"
    return render_binary_tree(tree.left, tree.right, tree.root, label)


def render_forest(forest, names: Optional[Sequence[str]] = None,
                  include_dummies: bool = True) -> str:
    """ASCII rendering of a :class:`~repro.core.path_trees.PathForest`."""
    def label(u: int) -> str:
        if u >= forest.num_real:
            return f"d{u - forest.num_real + 1}"
        return _default_leaf_name(u, names)

    parts = []
    for root in forest.roots(include_dummies=include_dummies):
        parts.append(render_binary_tree(forest.left, forest.right, int(root),
                                        label))
    return "\n\n".join(parts)


def render_cover(cover: PathCover,
                 names: Optional[Sequence[str]] = None) -> str:
    """One line per path, e.g. ``path 1: a - b - c``."""
    lines = []
    for i, path in enumerate(cover.paths, start=1):
        body = " - ".join(_default_leaf_name(v, names) for v in path)
        lines.append(f"path {i}: {body}")
    return "\n".join(lines)


__all__.append("render_binary_cotree")
