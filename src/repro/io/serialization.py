"""Serialisation of cotrees, graphs and path covers.

Two formats are supported:

* a JSON document (``to_json`` / ``from_json``) that round-trips every field,
  suitable for experiment artefacts;
* a compact one-line text form for cotrees (``to_text`` / ``from_text``)
  using ``*`` for join and ``+`` for union, e.g. ``(0 + (1 * 2))`` — handy in
  examples, error messages and doctests.
"""

from __future__ import annotations

import json
from typing import Dict, List, Union

from ..cograph import Cotree, Graph, PathCover
from ..cograph.cotree import JOIN, LEAF, UNION

__all__ = [
    "cotree_to_json", "cotree_from_json",
    "cotree_to_text", "cotree_from_text",
    "cover_to_json", "cover_from_json",
    "graph_to_json", "graph_from_json",
    "save_json", "load_json",
]


# --------------------------------------------------------------------------- #
# cotrees
# --------------------------------------------------------------------------- #

def cotree_to_json(tree: Cotree) -> Dict:
    """JSON-serialisable dict representation of a cotree."""
    return {
        "type": "cotree",
        "kind": [int(k) for k in tree.kind],
        "children": [list(map(int, c)) for c in tree.children],
        "leaf_vertex": [int(v) for v in tree.leaf_vertex],
        "root": int(tree.root),
    }


def cotree_from_json(data: Dict) -> Cotree:
    """Inverse of :func:`cotree_to_json`."""
    if data.get("type") != "cotree":
        raise ValueError("not a serialised cotree")
    return Cotree(data["kind"], data["children"], data["leaf_vertex"],
                  data["root"])


def cotree_to_text(tree: Cotree) -> str:
    """Compact text form: ``*`` = join, ``+`` = union, leaves by vertex id."""
    def rec(u: int) -> str:
        if tree.kind[u] == LEAF:
            return str(int(tree.leaf_vertex[u]))
        sep = " * " if tree.kind[u] == JOIN else " + "
        return "(" + sep.join(rec(c) for c in tree.children[u]) + ")"
    return rec(tree.root)


def cotree_from_text(text: str) -> Cotree:
    """Parse the compact text form produced by :func:`cotree_to_text`."""
    tokens = text.replace("(", " ( ").replace(")", " ) ") \
                 .replace("*", " * ").replace("+", " + ").split()
    pos = 0

    def parse():
        nonlocal pos
        token = tokens[pos]
        if token == "(":
            pos += 1
            children = [parse()]
            op = None
            while tokens[pos] != ")":
                if tokens[pos] in ("*", "+"):
                    new_op = "join" if tokens[pos] == "*" else "union"
                    if op is not None and new_op != op:
                        raise ValueError("mixed operators inside one group")
                    op = new_op
                    pos += 1
                children.append(parse())
            pos += 1
            if op is None:
                if len(children) != 1:
                    raise ValueError("group without operator")
                return children[0]
            return tuple([op] + children)
        pos += 1
        return int(token)

    try:
        spec = parse()
    except IndexError:
        raise ValueError(
            f"truncated cotree text (unbalanced parentheses?): {text!r}"
        ) from None
    if pos != len(tokens):
        raise ValueError("trailing input after cotree expression")
    if isinstance(spec, int):
        return Cotree.single_vertex(spec)
    return Cotree.from_nested(spec).canonicalize()


# --------------------------------------------------------------------------- #
# covers and graphs
# --------------------------------------------------------------------------- #

def cover_to_json(cover: PathCover) -> Dict:
    """JSON-serialisable dict of a path cover."""
    return {"type": "path_cover", "paths": [list(map(int, p)) for p in cover.paths]}


def cover_from_json(data: Dict) -> PathCover:
    """Inverse of :func:`cover_to_json`."""
    if data.get("type") != "path_cover":
        raise ValueError("not a serialised path cover")
    return PathCover([list(p) for p in data["paths"]])


def graph_to_json(graph: Graph) -> Dict:
    """JSON-serialisable dict of a graph (edge list)."""
    return {"type": "graph", "n": graph.n,
            "edges": [[int(u), int(v)] for u, v in graph.edges()]}


def graph_from_json(data: Dict) -> Graph:
    """Inverse of :func:`graph_to_json`."""
    if data.get("type") != "graph":
        raise ValueError("not a serialised graph")
    return Graph(data["n"], [tuple(e) for e in data["edges"]])


# --------------------------------------------------------------------------- #
# files
# --------------------------------------------------------------------------- #

def save_json(obj, path: str) -> None:
    """Serialise a cotree / cover / graph / :class:`~repro.api.Solution`
    (or a prepared dict) to a file."""
    if isinstance(obj, Cotree):
        data = cotree_to_json(obj)
    elif isinstance(obj, PathCover):
        data = cover_to_json(obj)
    elif isinstance(obj, Graph):
        data = graph_to_json(obj)
    elif hasattr(obj, "to_json_dict"):  # Solution (duck-typed: no api import)
        data = obj.to_json_dict()
        if not isinstance(data, dict) or "type" not in data:
            # e.g. a bare CostReport: its payload has no tag for load_json
            raise TypeError(
                f"cannot serialise {type(obj).__name__}: its "
                f"to_json_dict() payload carries no 'type' tag for "
                f"load_json dispatch")
    else:
        data = obj
    with open(path, "w", encoding="utf8") as fh:
        json.dump(data, fh, indent=2)


def load_json(path: str) -> Union[Cotree, PathCover, Graph, Dict]:
    """Load a file produced by :func:`save_json`, dispatching on its type."""
    with open(path, "r", encoding="utf8") as fh:
        data = json.load(fh)
    kind = data.get("type") if isinstance(data, dict) else None
    if kind == "cotree":
        return cotree_from_json(data)
    if kind == "path_cover":
        return cover_from_json(data)
    if kind == "graph":
        return graph_from_json(data)
    if kind == "solution":
        # imported lazily: repro.api sits above repro.io in the layering
        from ..api.solution import Solution
        return Solution.from_json_dict(data)
    return data
