"""Zero-copy binary wire format for :class:`~repro.cograph.FlatCotree` /
:class:`~repro.cograph.forest.FlatForest` (PR 10).

The hot path's canonical in-memory form is already a handful of flat NumPy
arrays (the CSR struct-of-arrays of :mod:`repro.cograph.flat`); this module
makes that layout the *interchange* form too, so server and stream ingestion
stop paying JSON/text parsing entirely:

* :func:`to_bytes` serialises a tree (or packed forest) as a fixed 56-byte
  header followed by the raw little-endian array buffers — ``int64`` arrays
  first (so every one stays 8-byte aligned), ``int8`` arrays last;
* :func:`from_bytes` is **zero-copy**: after validating the header (magic,
  byte-order mark, version, CRC-32, exact total length) every array is an
  ``np.frombuffer`` view into the caller's buffer — no parse, no copy.
  Loads that pass the CRC are marked ``pre_validated`` so trusted pipeline
  stages skip their redundant re-validation scans;
* :func:`save` / :func:`load` move trees through files, with ``load``
  memory-mapping by default (the OS pages the arrays in lazily);
* :func:`frame` / :func:`read_frames` wrap payloads in ``u32``
  length-prefixed frames for streaming transports
  (``solve --stream --format binary`` and the server's
  ``application/octet-stream`` bodies reuse them).

Every malformed input — truncated buffer, wrong magic, byte-swapped
(big-endian) header, unknown version, CRC mismatch, inconsistent lengths —
raises :class:`ValueError` with a message naming the offending field; the
decoder never crashes into NumPy index errors.
"""

from __future__ import annotations

import struct
import zlib
from typing import BinaryIO, Iterator, Union

import numpy as np

from ..cograph.flat import FlatCotree
from ..cograph.forest import FlatForest

__all__ = ["MAGIC", "VERSION", "HEADER_SIZE", "to_bytes", "from_bytes",
           "save", "load", "frame", "read_frames", "MAX_FRAME_BYTES"]

#: the 4 magic bytes every wire buffer starts with
MAGIC = b"RPRW"
#: wire format version this build reads and writes
VERSION = 1

#: header layout (all little-endian): magic, byte-order mark, version,
#: container, flags, index dtype code, kind dtype code, num_nodes,
#: num_edges, num_q_edges, root, num_instances — followed by a u32 CRC-32
#: of those 52 bytes.
_HEADER = struct.Struct("<4sHHBBBBQQQqQ")
_CRC = struct.Struct("<I")
HEADER_SIZE = _HEADER.size + _CRC.size          # 52 + 4 = 56 (8-aligned)

_BOM = 0xFEFF                                   # reads as 0xFFFE when swapped
_CONTAINER_TREE = 0
_CONTAINER_FOREST = 1
_FLAG_PRIME = 0x01                              # quotient payload present
_DTYPE_INDEX = 8                                # int64 (itemsize)
_DTYPE_KIND = 1                                 # int8 (itemsize)

_I64 = np.dtype("<i8")
_I8 = np.dtype("|i1")

#: refuse length-prefixed frames larger than this (a corrupt length prefix
#: must not trigger a multi-gigabyte allocation)
MAX_FRAME_BYTES = 1 << 31

WireTree = Union[FlatCotree, FlatForest]


def _le64(a: np.ndarray) -> np.ndarray:
    """The array as contiguous little-endian int64 (no copy on LE hosts)."""
    return np.ascontiguousarray(a, dtype=np.int64).astype(_I64, copy=False)


def _le8(a: np.ndarray) -> np.ndarray:
    return np.ascontiguousarray(a, dtype=np.int8).astype(_I8, copy=False)


def _int64_arrays(tree: WireTree):
    """The tree's int64 payload arrays, in wire order."""
    arrays = [tree.child_offset, tree.child_index, tree.parent,
              tree.leaf_vertex]
    if isinstance(tree, FlatForest):
        arrays += [tree.roots, tree.instance_id, tree.node_base,
                   tree.vertex_base, tree.leaf_vertex_local]
    elif len(tree.q_offset):
        arrays += [tree.q_offset, tree.q_edge_u, tree.q_edge_v]
    return arrays


# --------------------------------------------------------------------------- #
# encoding
# --------------------------------------------------------------------------- #

def to_bytes(tree: WireTree) -> bytes:
    """Serialise a :class:`FlatCotree` or :class:`FlatForest` to wire bytes.

    The inverse of :func:`from_bytes`:
    ``from_bytes(to_bytes(t)) == t`` field for field.
    """
    if not isinstance(tree, FlatCotree):
        raise TypeError(f"to_bytes serialises FlatCotree / FlatForest, got "
                        f"{type(tree).__name__}; convert with "
                        f"as_flat_cotree() first")
    is_forest = isinstance(tree, FlatForest)
    has_prime = (not is_forest) and bool(len(tree.q_offset))
    container = _CONTAINER_FOREST if is_forest else _CONTAINER_TREE
    flags = _FLAG_PRIME if has_prime else 0
    header = _HEADER.pack(
        MAGIC, _BOM, VERSION, container, flags, _DTYPE_INDEX, _DTYPE_KIND,
        tree.num_nodes, len(tree.child_index),
        len(tree.q_edge_u) if has_prime else 0,
        int(tree.root),
        tree.num_instances if is_forest else 0)
    chunks = [header, _CRC.pack(zlib.crc32(header))]
    chunks += [_le64(a).tobytes() for a in _int64_arrays(tree)]
    chunks.append(_le8(tree.kind).tobytes())
    if has_prime:
        chunks.append(_le8(tree.spider).tobytes())
    return b"".join(chunks)


# --------------------------------------------------------------------------- #
# decoding
# --------------------------------------------------------------------------- #

def _fail(what: str) -> ValueError:
    return ValueError(f"invalid wire buffer: {what}")


def from_bytes(buf) -> WireTree:
    """Decode wire bytes into a :class:`FlatCotree` / :class:`FlatForest`.

    Accepts ``bytes``, ``bytearray``, ``memoryview`` or an ``mmap`` — every
    array of the result is a **zero-copy view** into ``buf`` (keep the
    buffer alive as long as the tree; the views hold a reference for you).
    Raises :class:`ValueError` on any malformed input.
    """
    view = memoryview(buf)
    total = view.nbytes
    if total < HEADER_SIZE:
        raise _fail(f"truncated header ({total} bytes, need {HEADER_SIZE})")
    (magic, bom, version, container, flags, dtype_index, dtype_kind,
     num_nodes, num_edges, num_q, root, num_instances) = \
        _HEADER.unpack_from(view, 0)
    if magic != MAGIC:
        raise _fail(f"bad magic {bytes(magic)!r} (expected {MAGIC!r})")
    if bom != _BOM:
        if bom == 0xFFFE:
            raise _fail("byte-swapped header: the buffer was produced on a "
                        "big-endian host; the wire format is little-endian "
                        "only")
        raise _fail(f"bad byte-order mark 0x{bom:04X}")
    if version != VERSION:
        raise _fail(f"unsupported version {version} (this build reads "
                    f"version {VERSION})")
    (crc_stored,) = _CRC.unpack_from(view, _HEADER.size)
    crc_actual = zlib.crc32(view[:_HEADER.size])
    if crc_stored != crc_actual:
        raise _fail(f"header CRC mismatch (stored 0x{crc_stored:08X}, "
                    f"computed 0x{crc_actual:08X})")
    if container not in (_CONTAINER_TREE, _CONTAINER_FOREST):
        raise _fail(f"unknown container code {container}")
    if flags & ~_FLAG_PRIME:
        raise _fail(f"unknown flag bits 0x{flags:02X}")
    is_forest = container == _CONTAINER_FOREST
    has_prime = bool(flags & _FLAG_PRIME)
    if is_forest and has_prime:
        raise _fail("a forest container cannot carry a quotient payload")
    if not is_forest and num_instances:
        raise _fail("a tree container must have num_instances == 0")
    if dtype_index != _DTYPE_INDEX or dtype_kind != _DTYPE_KIND:
        raise _fail(f"unsupported dtype codes ({dtype_index}, {dtype_kind}); "
                    f"this build reads int64 indices and int8 kinds")
    n, e, k = int(num_nodes), int(num_edges), int(num_instances)
    if root < -1 or root >= n:
        raise _fail(f"root {root} out of range for {n} nodes")

    # exact layout: int64 arrays first (8-aligned after the 56-byte
    # header), int8 arrays last
    i64_lens = [n + 1, e, n, n]
    if is_forest:
        i64_lens += [k, n, k + 1, k + 1, n]
    elif has_prime:
        i64_lens += [n + 1, num_q, num_q]
    i8_lens = [n, n] if has_prime else [n]
    expected = HEADER_SIZE + 8 * sum(i64_lens) + sum(i8_lens)
    if total != expected:
        raise _fail(f"payload length mismatch: buffer has {total} bytes, "
                    f"header describes {expected}")

    offset = HEADER_SIZE
    i64 = []
    for length in i64_lens:
        i64.append(np.frombuffer(view, dtype=_I64, count=length,
                                 offset=offset))
        offset += 8 * length
    i8 = []
    for length in i8_lens:
        i8.append(np.frombuffer(view, dtype=_I8, count=length,
                                offset=offset))
        offset += length

    kind = i8[0]
    if is_forest:
        child_offset, child_index, parent, leaf_vertex, roots, \
            instance_id, node_base, vertex_base, leaf_vertex_local = i64
        out: WireTree = FlatForest(kind, child_offset, child_index, parent,
                                   leaf_vertex, roots, instance_id,
                                   node_base, vertex_base, leaf_vertex_local)
    elif has_prime:
        child_offset, child_index, parent, leaf_vertex, q_offset, \
            q_edge_u, q_edge_v = i64
        out = FlatCotree(kind, child_offset, child_index, parent,
                         leaf_vertex, root, q_offset=q_offset,
                         q_edge_u=q_edge_u, q_edge_v=q_edge_v, spider=i8[1])
    else:
        child_offset, child_index, parent, leaf_vertex = i64
        out = FlatCotree(kind, child_offset, child_index, parent,
                         leaf_vertex, root)
    # O(1) structural cross-checks (the CSR bounds the header implies)
    if n and (int(out.child_offset[0]) != 0
              or int(out.child_offset[-1]) != e):
        raise _fail("child_offset does not span the child_index array")
    # integrity verified (CRC + exact lengths): trusted stages may skip
    # their redundant re-validation
    out.pre_validated = True
    return out


# --------------------------------------------------------------------------- #
# files
# --------------------------------------------------------------------------- #

def save(tree: WireTree, path) -> None:
    """Write ``to_bytes(tree)`` to ``path``."""
    with open(path, "wb") as fh:
        fh.write(to_bytes(tree))


def load(path, *, mmap: bool = True) -> WireTree:
    """Load a wire file, memory-mapping it by default.

    With ``mmap=True`` the returned tree's arrays are views into the
    mapped file (pages fault in on first touch; nothing is read up
    front).  With ``mmap=False`` the whole file is read into one bytes
    object first.
    """
    if not mmap:
        with open(path, "rb") as fh:
            return from_bytes(fh.read())
    import mmap as _mmap
    with open(path, "rb") as fh:
        mapped = _mmap.mmap(fh.fileno(), 0, access=_mmap.ACCESS_READ)
    return from_bytes(mapped)       # the views keep the mapping alive


# --------------------------------------------------------------------------- #
# length-prefixed frames (streaming transports)
# --------------------------------------------------------------------------- #

def frame(payload: bytes) -> bytes:
    """Wrap a payload in a ``u32`` little-endian length prefix."""
    if len(payload) > MAX_FRAME_BYTES:
        raise ValueError(f"frame payload of {len(payload)} bytes exceeds "
                         f"the {MAX_FRAME_BYTES}-byte limit")
    return struct.pack("<I", len(payload)) + payload


def read_frames(fh: BinaryIO) -> Iterator[bytes]:
    """Yield successive length-prefixed payloads from a binary stream.

    Stops cleanly at EOF on a frame boundary; a truncated prefix or body
    raises :class:`ValueError` (the stream died mid-frame).
    """
    while True:
        prefix = fh.read(4)
        if not prefix:
            return
        if len(prefix) < 4:
            raise ValueError(f"truncated frame prefix ({len(prefix)} of 4 "
                             f"bytes) — the binary stream ended mid-frame")
        (length,) = struct.unpack("<I", prefix)
        if length > MAX_FRAME_BYTES:
            raise ValueError(f"frame of {length} bytes exceeds the "
                             f"{MAX_FRAME_BYTES}-byte limit (corrupt "
                             f"prefix?)")
        payload = fh.read(length)
        if len(payload) < length:
            raise ValueError(f"truncated frame: prefix promised {length} "
                             f"bytes, stream delivered {len(payload)}")
        yield payload
