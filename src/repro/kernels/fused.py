"""Fused hot-loop kernels: Numba-jitted when available, NumPy otherwise.

Every kernel exists twice:

* a **jitted** implementation — ``@njit(cache=True, parallel=True)`` loops
  with ``prange`` over independent output slots, so the result is
  deterministic (each slot is reduced left-to-right, exactly the order
  ``ufunc.reduceat`` uses) while the slots themselves run on all cores;
* a **NumPy fallback** that is *literally the vectorized expression the
  call site used before kernels existed* (``reduceat``, fancy-index
  scatter, ``arange - repeat``), so fallback mode is bit-identical to
  :class:`~repro.backends.fast_backend.FastBackend` by construction.

:func:`build_kernels` returns a :class:`Kernels` table in ``"jit"`` or
``"fallback"`` mode; call sites never know which they got.  The reduction
operators are passed as the engine's string names (``"sum"`` / ``"max"`` /
``"min"`` / ``"prod"``) and translated to integer op codes at the wrapper
layer — jitted loops dispatch on a plain ``int``.

Semantics contract (checked by ``tests/test_kernel_backend.py`` property
tests): ``segment_reduce`` / ``gather_reduce`` / ``level_gather_reduce``
replicate ``ufunc.reduceat`` over the same segments, including the
degenerate empty-segment rule (``out[i] = values[offsets[i]]``).
"""

from __future__ import annotations

from typing import Any, Dict

import numpy as np

__all__ = ["Kernels", "build_kernels", "OP_CODES"]

#: engine op name -> integer op code used inside the jitted loops
OP_CODES = {"sum": 0, "max": 1, "min": 2, "prod": 3}

#: op code -> the ufunc the NumPy fallbacks reduce with
_UFUNC_BY_CODE = (np.add, np.maximum, np.minimum, np.multiply)


# --------------------------------------------------------------------------- #
# NumPy fallbacks (the pre-kernel expressions, verbatim)
# --------------------------------------------------------------------------- #

def _segment_reduce_np(values, seg_offsets, opcode):
    return _UFUNC_BY_CODE[opcode].reduceat(values, seg_offsets[:-1])


def _gather_reduce_np(values, index, seg_offsets, opcode):
    return _UFUNC_BY_CODE[opcode].reduceat(values[index], seg_offsets[:-1])


def _level_gather_reduce_np(values, child_offset, child_index, nodes, opcode):
    starts = child_offset[nodes]
    counts = child_offset[nodes + 1] - starts
    seg_offsets = np.zeros(len(nodes) + 1, dtype=np.int64)
    np.cumsum(counts, out=seg_offsets[1:])
    total = int(seg_offsets[-1])
    pos = (np.arange(total, dtype=np.int64)
           - np.repeat(seg_offsets[:-1], counts)
           + np.repeat(starts, counts))
    return _UFUNC_BY_CODE[opcode].reduceat(values[child_index[pos]],
                                           seg_offsets[:-1])


def _invert_permutation_np(perm):
    out = np.empty(len(perm), dtype=np.int64)
    out[perm] = np.arange(len(perm), dtype=np.int64)
    return out


def _segment_arange_np(counts):
    total = int(counts.sum())
    offsets = np.cumsum(counts) - counts
    return (np.arange(total, dtype=np.int64)
            - np.repeat(offsets, counts))


def _leftist_swap_np(left, right, leaves, internal):
    viol = internal[leaves[left[internal]] < leaves[right[internal]]]
    if len(viol):
        tmp = left[viol].copy()
        left[viol] = right[viol]
        right[viol] = tmp
    return int(len(viol))


_NUMPY_TABLE: Dict[str, Any] = {
    "segment_reduce": _segment_reduce_np,
    "gather_reduce": _gather_reduce_np,
    "level_gather_reduce": _level_gather_reduce_np,
    "invert_permutation": _invert_permutation_np,
    "segment_arange": _segment_arange_np,
    "leftist_swap": _leftist_swap_np,
}


# --------------------------------------------------------------------------- #
# jitted implementations (compiled lazily on first call, per dtype)
# --------------------------------------------------------------------------- #

def _build_jit_table() -> Dict[str, Any]:
    """Compile the jitted kernel table (raises when numba is unusable)."""
    from numba import njit, prange

    @njit(cache=True, parallel=True)
    def segment_reduce(values, seg_offsets, opcode):
        m = seg_offsets.shape[0] - 1
        n = values.shape[0]
        out = np.empty(m, values.dtype)
        for i in prange(m):
            s = seg_offsets[i]
            e = seg_offsets[i + 1]
            if s >= e:
                # reduceat's degenerate rule: an empty segment yields the
                # element at its own offset
                out[i] = values[min(s, n - 1)]
                continue
            acc = values[s]
            for j in range(s + 1, e):
                v = values[j]
                if opcode == 0:
                    acc = acc + v
                elif opcode == 1:
                    acc = v if v > acc else acc
                elif opcode == 2:
                    acc = v if v < acc else acc
                else:
                    acc = acc * v
            out[i] = acc
        return out

    @njit(cache=True, parallel=True)
    def gather_reduce(values, index, seg_offsets, opcode):
        m = seg_offsets.shape[0] - 1
        k = index.shape[0]
        out = np.empty(m, values.dtype)
        for i in prange(m):
            s = seg_offsets[i]
            e = seg_offsets[i + 1]
            if s >= e:
                out[i] = values[index[min(s, k - 1)]]
                continue
            acc = values[index[s]]
            for j in range(s + 1, e):
                v = values[index[j]]
                if opcode == 0:
                    acc = acc + v
                elif opcode == 1:
                    acc = v if v > acc else acc
                elif opcode == 2:
                    acc = v if v < acc else acc
                else:
                    acc = acc * v
            out[i] = acc
        return out

    @njit(cache=True, parallel=True)
    def level_gather_reduce(values, child_offset, child_index, nodes, opcode):
        m = nodes.shape[0]
        out = np.empty(m, values.dtype)
        for i in prange(m):
            u = nodes[i]
            s = child_offset[u]
            e = child_offset[u + 1]
            if s >= e:
                out[i] = 0
                continue
            acc = values[child_index[s]]
            for j in range(s + 1, e):
                v = values[child_index[j]]
                if opcode == 0:
                    acc = acc + v
                elif opcode == 1:
                    acc = v if v > acc else acc
                elif opcode == 2:
                    acc = v if v < acc else acc
                else:
                    acc = acc * v
            out[i] = acc
        return out

    @njit(cache=True, parallel=True)
    def invert_permutation(perm):
        n = perm.shape[0]
        out = np.empty(n, np.int64)
        for i in prange(n):
            out[perm[i]] = i
        return out

    @njit(cache=True, parallel=True)
    def segment_arange(counts):
        m = counts.shape[0]
        offsets = np.empty(m + 1, np.int64)
        offsets[0] = 0
        for i in range(m):
            offsets[i + 1] = offsets[i] + counts[i]
        out = np.empty(offsets[m], np.int64)
        for i in prange(m):
            base = offsets[i]
            for j in range(counts[i]):
                out[base + j] = j
        return out

    @njit(cache=True, parallel=True)
    def leftist_swap(left, right, leaves, internal):
        count = 0
        for i in prange(internal.shape[0]):
            u = internal[i]
            lo = left[u]
            hi = right[u]
            if leaves[lo] < leaves[hi]:
                left[u] = hi
                right[u] = lo
                count += 1
        return count

    return {
        "segment_reduce": segment_reduce,
        "gather_reduce": gather_reduce,
        "level_gather_reduce": level_gather_reduce,
        "invert_permutation": invert_permutation,
        "segment_arange": segment_arange,
        "leftist_swap": leftist_swap,
    }


# --------------------------------------------------------------------------- #
# the public kernel table
# --------------------------------------------------------------------------- #

def _c(a):
    """Contiguity coercion for the jitted loops (no copy when already C)."""
    return np.ascontiguousarray(a)


class Kernels:
    """One immutable kernel table; ``mode`` is ``"jit"`` or ``"fallback"``.

    Call sites hold a single ``Kernels`` reference (via
    :class:`~repro.backends.kernel_backend.KernelBackend`) and never branch
    on the mode: the table behind the methods already is whichever tier the
    environment supports.
    """

    __slots__ = ("mode", "_t")

    def __init__(self, mode: str, table: Dict[str, Any]) -> None:
        self.mode = mode
        self._t = table

    # -- segmented reductions (ufunc.reduceat semantics) ----------------- #

    def segment_reduce(self, values, seg_offsets, op: str):
        """Per-segment reduction of ``values`` (``reduceat`` semantics)."""
        return self._t["segment_reduce"](_c(values), _c(seg_offsets),
                                         OP_CODES[op])

    def gather_reduce(self, values, index, seg_offsets, op: str):
        """Per-segment reduction of ``values[index]`` without materialising
        the gather."""
        return self._t["gather_reduce"](_c(values), _c(index),
                                        _c(seg_offsets), OP_CODES[op])

    def level_gather_reduce(self, values, child_offset, child_index, nodes,
                            op: str):
        """The fully fused DP level sweep: for every node ``u`` in ``nodes``
        reduce ``values`` over ``u``'s CSR child slice in one pass — no
        child-position arithmetic, no gathered temporaries."""
        return self._t["level_gather_reduce"](_c(values), _c(child_offset),
                                              _c(child_index), _c(nodes),
                                              OP_CODES[op])

    # -- per-stage passes ------------------------------------------------ #

    def invert_permutation(self, perm):
        """``out[perm[i]] = i`` (the extract-stage permutation scatter)."""
        return self._t["invert_permutation"](_c(perm))

    def segment_arange(self, counts):
        """Concatenated ``0..counts[i]-1`` ranges (binarize id allocation)."""
        return self._t["segment_arange"](_c(counts))

    def leftist_swap(self, left, right, leaves, internal):
        """Swap children of every leftist-violating node **in place**;
        returns the number of swaps."""
        return self._t["leftist_swap"](left, right, _c(leaves), _c(internal))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Kernels(mode={self.mode!r})"


def build_kernels(prefer_jit: bool = True) -> Kernels:
    """Build the kernel table: jitted when numba imports cleanly, else the
    NumPy fallback tier (same answers, no compilation)."""
    if prefer_jit:
        try:
            return Kernels("jit", _build_jit_table())
        except Exception:  # pragma: no cover - exercised only without numba
            pass
    return Kernels("fallback", _NUMPY_TABLE)
