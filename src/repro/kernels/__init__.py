"""Optional compiled-kernel tier (PR 10).

This package hosts the fused hot-loop kernels behind
:class:`~repro.backends.kernel_backend.KernelBackend` — the third execution
backend.  Numba is an **optional** dependency (``pip install .[kernels]``):

* when it imports cleanly the kernels are ``@njit(parallel=True)`` compiled
  loops (``mode == "jit"``);
* when it is absent (or broken) the same table is backed by the exact NumPy
  expressions the call sites used before kernels existed
  (``mode == "fallback"``) — bit-identical answers, no compilation, no new
  dependency.

Availability is probed **once at import time** and cached in
:data:`NUMBA_AVAILABLE`; :func:`kernel_status` is the structured view that
``python -m repro --version`` and the server's ``/healthz`` report.
"""

from __future__ import annotations

from typing import Dict, Optional

from .fused import OP_CODES, Kernels, build_kernels

__all__ = ["KERNELS", "Kernels", "build_kernels", "kernel_status",
           "NUMBA_AVAILABLE", "NUMBA_VERSION", "OP_CODES"]

#: import-time probe, run exactly once per process
NUMBA_AVAILABLE: bool
NUMBA_VERSION: Optional[str]
try:  # pragma: no cover - depends on the environment
    import numba as _numba

    NUMBA_AVAILABLE = True
    NUMBA_VERSION = getattr(_numba, "__version__", "unknown")
except Exception:  # pragma: no cover - the no-numba environment
    NUMBA_AVAILABLE = False
    NUMBA_VERSION = None

#: the process-wide kernel table (jit when numba is live, else fallback)
KERNELS: Kernels = build_kernels(prefer_jit=NUMBA_AVAILABLE)


def kernel_status() -> Dict[str, object]:
    """The compiled-kernel tier's health, for ``--version`` / ``/healthz``."""
    return {
        "numba_available": NUMBA_AVAILABLE,
        "numba_version": NUMBA_VERSION,
        "mode": KERNELS.mode,
    }
