"""Measurement, complexity fitting, experiment registry and table rendering."""

from .complexity import GROWTH_MODELS, FitResult, best_model, fit_growth, loglog_slope
from .experiments import EXPERIMENTS, ExperimentSpec, experiment_by_id
from .metrics import ParallelMetrics, compute_metrics, log2ceil
from .tables import format_markdown_table, format_table, print_table

__all__ = [
    "GROWTH_MODELS", "FitResult", "fit_growth", "best_model", "loglog_slope",
    "EXPERIMENTS", "ExperimentSpec", "experiment_by_id",
    "ParallelMetrics", "compute_metrics", "log2ceil",
    "format_table", "format_markdown_table", "print_table",
]
