"""Speedup / efficiency / work metrics used by the benchmark harness."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

__all__ = ["ParallelMetrics", "compute_metrics", "log2ceil"]


def log2ceil(n: int) -> int:
    """``ceil(log2 n)`` with the convention ``log2ceil(<=2) == 1``."""
    if n <= 2:
        return 1
    return int(math.ceil(math.log2(n)))


@dataclass
class ParallelMetrics:
    """Derived quantities for one parallel run.

    Attributes
    ----------
    n:
        input size.
    parallel_time:
        simulated time (Brent-scheduled steps).
    work:
        total operations executed.
    processors:
        processor count used for the time figure.
    sequential_time:
        operation count of the sequential reference (when available).
    speedup:
        ``sequential_time / parallel_time``.
    efficiency:
        ``speedup / processors``.
    work_ratio:
        ``work / sequential_time`` — the work-optimality figure (O(1) for a
        work-optimal algorithm).
    time_per_log_n:
        ``parallel_time / ceil(log2 n)`` — the time-optimality figure (O(1)
        for a time-optimal algorithm).
    work_per_n:
        ``work / n``.
    """

    n: int
    parallel_time: int
    work: int
    processors: int
    sequential_time: Optional[int] = None
    speedup: Optional[float] = None
    efficiency: Optional[float] = None
    work_ratio: Optional[float] = None
    time_per_log_n: float = 0.0
    work_per_n: float = 0.0

    def to_dict(self) -> dict:
        return {k: v for k, v in self.__dict__.items()}


def compute_metrics(n: int, parallel_time: int, work: int, processors: int,
                    sequential_time: Optional[int] = None) -> ParallelMetrics:
    """Assemble a :class:`ParallelMetrics` record."""
    m = ParallelMetrics(n=n, parallel_time=int(parallel_time), work=int(work),
                        processors=int(processors),
                        sequential_time=sequential_time)
    m.time_per_log_n = parallel_time / log2ceil(n)
    m.work_per_n = work / max(n, 1)
    if sequential_time is not None and parallel_time > 0:
        m.speedup = sequential_time / parallel_time
        m.efficiency = m.speedup / max(processors, 1)
        m.work_ratio = work / max(sequential_time, 1)
    return m
