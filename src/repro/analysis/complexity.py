"""Empirical complexity fitting.

The benchmarks do not try to match the paper's constants (there are none to
match — it is an asymptotic result); what they check is the *shape*: parallel
time growing like ``log n``, work growing like ``n``, the naive baseline
growing like ``n log n`` on caterpillars, and so on.  This module fits
measurements against a small family of candidate growth models by least
squares on the scaled residuals and reports which model explains the data
best, plus a log–log slope estimate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence, Tuple

import numpy as np

__all__ = ["GROWTH_MODELS", "FitResult", "fit_growth", "loglog_slope",
           "best_model"]


def _safe_log2(n: np.ndarray) -> np.ndarray:
    return np.log2(np.maximum(n, 2.0))


#: name -> g(n); measurements are fitted as  y ≈ c * g(n)
GROWTH_MODELS: Dict[str, Callable[[np.ndarray], np.ndarray]] = {
    "1": lambda n: np.ones_like(n, dtype=float),
    "log n": lambda n: _safe_log2(n),
    "log^2 n": lambda n: _safe_log2(n) ** 2,
    "sqrt n": lambda n: np.sqrt(n),
    "n": lambda n: n.astype(float),
    "n log n": lambda n: n * _safe_log2(n),
    "n^2": lambda n: n.astype(float) ** 2,
}


@dataclass
class FitResult:
    """Least-squares fit of ``y ≈ c * g(n)`` for one growth model."""

    model: str
    constant: float
    relative_rmse: float

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.constant:.3g} * {self.model} (rel. RMSE {self.relative_rmse:.3f})"


def fit_growth(sizes: Sequence[int], values: Sequence[float],
               models: Sequence[str] = None) -> List[FitResult]:
    """Fit every candidate model and return them sorted best-first.

    The fit minimises the *relative* residual ``(y - c g(n)) / y`` so that
    large inputs do not dominate; the reported figure of merit is the
    root-mean-square relative error.
    """
    n = np.asarray(sizes, dtype=float)
    y = np.asarray(values, dtype=float)
    if len(n) != len(y) or len(n) == 0:
        raise ValueError("sizes and values must be equal-length and non-empty")
    if np.any(y <= 0):
        raise ValueError("values must be positive to fit growth models")
    results = []
    for name in (models or GROWTH_MODELS):
        g = GROWTH_MODELS[name](n)
        # minimise sum((y - c g)^2 / y^2)  =>  c = sum(g/y) / sum(g^2/y^2)
        c = float(np.sum(g / y) / np.sum((g / y) ** 2))
        rel = (y - c * g) / y
        rmse = float(np.sqrt(np.mean(rel ** 2)))
        results.append(FitResult(model=name, constant=c, relative_rmse=rmse))
    results.sort(key=lambda r: r.relative_rmse)
    return results


def best_model(sizes: Sequence[int], values: Sequence[float],
               models: Sequence[str] = None) -> FitResult:
    """The best-fitting growth model."""
    return fit_growth(sizes, values, models)[0]


def loglog_slope(sizes: Sequence[int], values: Sequence[float]) -> float:
    """Slope of ``log y`` against ``log n`` — the empirical polynomial degree.

    A slope near 0 indicates poly-logarithmic growth, near 1 linear growth,
    near 2 quadratic growth.
    """
    n = np.log(np.asarray(sizes, dtype=float))
    y = np.log(np.asarray(values, dtype=float))
    if len(n) < 2:
        raise ValueError("need at least two points")
    slope, _ = np.polyfit(n, y, 1)
    return float(slope)
