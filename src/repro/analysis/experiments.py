"""The experiment registry: every claim/figure of the paper mapped to the
harness that regenerates it.

This is the machine-readable version of the experiment index in DESIGN.md;
``tests/test_experiment_registry.py`` keeps the two and the benchmark files on
disk consistent, so a claim cannot silently lose its harness.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

__all__ = ["ExperimentSpec", "EXPERIMENTS", "experiment_by_id"]


@dataclass(frozen=True)
class ExperimentSpec:
    """One row of the reproduction's experiment index."""

    experiment_id: str
    paper_item: str
    claim: str
    workload: str
    modules: Tuple[str, ...]
    harness: str


EXPERIMENTS: List[ExperimentSpec] = [
    ExperimentSpec(
        "E1", "Theorem 2.2 / Fig. 2",
        "Counting or reporting a minimum path cover needs Omega(log n) CREW "
        "time (reduction from OR); the balanced fan-in upper bound matches.",
        "OR bit-vectors reduced to cotrees, n = 2^4 .. 2^18",
        ("repro.core.lower_bound", "repro.pram"),
        "benchmarks/bench_lower_bound.py"),
    ExperimentSpec(
        "E2", "Lemma 2.3",
        "The sequential algorithm runs in O(n) time.",
        "random cotrees, n = 2^8 .. 2^17",
        ("repro.baselines.sequential",),
        "benchmarks/bench_sequential.py"),
    ExperimentSpec(
        "E3", "Lemma 2.4",
        "p(u) for every node is computable in O(log n) time and O(n) work "
        "on the EREW PRAM.",
        "random and caterpillar cotrees",
        ("repro.core.reduce", "repro.primitives.tree_contraction"),
        "benchmarks/bench_counting.py"),
    ExperimentSpec(
        "E4", "Theorem 5.3",
        "A minimum path cover is reported in O(log n) time using n/log n "
        "EREW processors (O(n) work).",
        "random cotrees across densities, n = 2^6 .. 2^15",
        ("repro.core.solver",),
        "benchmarks/bench_optimal_parallel.py"),
    ExperimentSpec(
        "E5", "Section 1 comparison",
        "The new algorithm dominates the sequential baseline, the naive "
        "parallelisation (O(height log n)), Lin et al. 1994 (O(log^2 n)) and "
        "Adhar-Peng (O(log^2 n), O(n^2) CRCW processors).",
        "same cotree families for all competitors, incl. caterpillars",
        ("repro.baselines", "repro.core.solver"),
        "benchmarks/bench_baseline_comparison.py"),
    ExperimentSpec(
        "E6", "Section 1 corollary",
        "Hamiltonian path / cycle queries are answered within the same "
        "bounds.",
        "joins of independent sets sweeping across the p(v) = L(w) crossover",
        ("repro.core.hamiltonian",),
        "benchmarks/bench_hamiltonian.py"),
    ExperimentSpec(
        "E7", "work-optimality claim",
        "Total work stays O(n): work/n is bounded and parallel efficiency "
        "with p = n/log n processors does not vanish.",
        "random cotrees, n = 2^6 .. 2^15",
        ("repro.analysis.metrics",),
        "benchmarks/bench_work_optimality.py"),
    ExperimentSpec(
        "E8", "Lemma 5.1 / 5.2",
        "The primitive toolbox (prefix sums, list ranking, Euler tour, "
        "bracket matching, tree contraction) runs in O(log n) rounds.",
        "arrays, linked lists and trees, n = 2^8 .. 2^17",
        ("repro.primitives",),
        "benchmarks/bench_primitives.py"),
    ExperimentSpec(
        "E9", "backend separation (engineering)",
        "The pipeline's outputs are backend-independent: the fast vectorized "
        "backend produces the same covers as the PRAM simulator while being "
        ">= 5x faster wall-clock at n = 10^4; solve_batch adds "
        "multi-instance throughput on top.",
        "all generator families, n = 10^3 .. 10^4, plus instance batches",
        ("repro.backends", "repro.core.pipeline", "repro.core.batch"),
        "benchmarks/bench_backends.py"),
    ExperimentSpec(
        "E10", "streaming scale-out (engineering)",
        "solve_stream consumes instance streams lazily with a bounded "
        "in-flight window (no full materialisation even at 100k "
        "instances); a persistent WorkerPool beats per-call solve_batch "
        "on repeated small batches; the canonical-form solution cache "
        "absorbs repeat traffic.",
        "lazily generated cotree streams, many small batches, skewed "
        "repeat-request mixes",
        ("repro.core.batch", "repro.api.solve", "repro.api.cache"),
        "benchmarks/bench_stream.py"),
    ExperimentSpec(
        "E11", "flat-array hot path (engineering)",
        "Per-stage wall-clock trajectory of the pipeline: the FlatCotree "
        "CSR form plus the C-level DFS numbering kernel keep every stage "
        "free of per-node Python loops; the end-to-end FastBackend solve "
        "at n = 10^5 is >= 3x faster than the pre-flat hot path, and the "
        "checked-in BENCH_PR4.json gives every future PR a per-stage "
        "regression baseline.",
        "random cotrees, n = 10^3 / 10^4 / 10^5, both backends",
        ("repro.cograph.flat", "repro._dfs", "repro.core.pipeline"),
        "benchmarks/bench_profile.py"),
    ExperimentSpec(
        "E12", "cotree-DP engine (engineering)",
        "The declarative bottom-up DP engine answers the classic cograph "
        "problems (max clique, max independent set, chromatic number, "
        "clique cover, independent-set counting) level-wise over FlatCotree "
        "CSR arrays; on the fast backend max_clique at n = 10^5 costs well "
        "under 2x the full-pipeline total the lower_bound task used to pay, "
        "and every task is backend-bit-identical.",
        "random cotrees, n = 10^3 / 10^4 / 10^5, both backends",
        ("repro.core.dp", "repro.api.tasks", "repro.cograph.flat"),
        "benchmarks/bench_profile.py"),
    ExperimentSpec(
        "E13", "forest batching (engineering)",
        "Thousands of small instances packed into one FlatForest and "
        "swept by a single vectorized engine run (solve_forest, or the "
        "batch_small routing of solve_many / solve_stream) beat the "
        "pooled batch front door by >= 10x at 10^4 instances with "
        "n <= 100, bit-identical to per-instance solve().",
        "10^4 random cotrees, n uniform in [1, 100], fast backend",
        ("repro.cograph.forest", "repro.api.forest", "repro.core.dp"),
        "benchmarks/bench_profile.py"),
    ExperimentSpec(
        "E14", "the service layer (engineering)",
        "The async HTTP/JSON service (repro.server) sustains concurrent "
        "mixed-task traffic on one warm pool with a non-zero shared-cache "
        "hit rate, sheds overload past queue_limit with 429s (never a "
        "5xx), and drains cleanly on shutdown.",
        "concurrent HTTP clients over a skewed mixed-task request stream, "
        "plus a saturation burst at queue_limit=2",
        ("repro.server.app", "repro.server.runner", "repro.api.cache"),
        "benchmarks/bench_server.py"),
    ExperimentSpec(
        "E15", "modular decomposition (engineering)",
        "The cotree-DP engine generalised to modular decomposition trees: "
        "md_tree() extends FlatCotree with prime nodes (closed-form "
        "spiders, bitmask quotients up to 16 children), the MD-capable "
        "tasks (max clique / independent set, weighted variants) answer "
        "P4-sparse and bounded-prime graphs exactly, and cograph inputs "
        "stay within 1.1x the pre-MD E12 budgets (bit-identical trees, "
        "same hot path).",
        "pinned random cotrees (n = 10^4 / 10^5) and random P4-sparse "
        "graphs (n = 500 / 2000), fast backend",
        ("repro.cograph.md", "repro.core.dp", "repro.api.tasks"),
        "benchmarks/bench_profile.py"),
    ExperimentSpec(
        "E16", "self-healing execution (engineering)",
        "The self-healing stream engine: a SIGKILLed worker never loses a "
        "result (the executor is rebuilt, lost in-flight chunks are "
        "resubmitted under a capped-backoff RetryPolicy, repeat killers "
        "are quarantined as structured ErrorOutcomes in their ordered "
        "slot), and on the healthy path the healing loop stays within 5% "
        "of the legacy fail-fast loop.",
        "3000 small instances (n <= 60) streamed over a warm 2-worker "
        "pool, healing vs fail-fast interleaved, no fault armed",
        ("repro.core.batch", "repro.core.retry", "repro.core.faults",
         "repro.server.app"),
        "benchmarks/bench_profile.py"),
    ExperimentSpec(
        "E17", "compiled kernels + wire format (engineering)",
        "The compiled kernel tier (backend='kernel': fused gather+reduce "
        "level sweeps, jitted when numba is present, bit-identical NumPy "
        "fallbacks otherwise) yields >= 3x over the fast backend at "
        "n = 100k when jitted and never regresses in fallback mode; "
        "zero-copy binary wire ingestion (repro.io.wire.from_bytes) is "
        ">= 10x faster than JSON parsing of the same instance in either "
        "mode.",
        "pinned random cotrees, n = 10k / 100k, pipeline end to end on "
        "fast vs kernel + ingestion-to-FlatCotree microbench",
        ("repro.kernels", "repro.backends", "repro.io.wire",
         "repro.core.dp"),
        "benchmarks/bench_profile.py"),
    ExperimentSpec(
        "A1", "leftist condition (ablation)",
        "Without the leftist reordering the 1-node recurrence stops being "
        "minimum: the produced covers are strictly larger on adversarial "
        "joins.",
        "joins of skewed independent sets",
        ("repro.core.leftist", "repro.cograph.validation"),
        "benchmarks/bench_ablation_leftist.py"),
    ExperimentSpec(
        "A2", "dummy vertices (ablation)",
        "Without dummy vertices / legalisation the pseudo path trees contain "
        "adjacencies that are not edges; the count of such violations is "
        "measured.",
        "random cographs with Case-2 joins",
        ("repro.core.path_trees",),
        "benchmarks/bench_ablation_dummies.py"),
    ExperimentSpec(
        "A3", "work-efficient primitives (ablation)",
        "Wyllie pointer jumping costs Theta(n log n) work vs Theta(n) for the "
        "contraction-based list ranking; the work ratio grows like log n.",
        "linked lists, n = 2^8 .. 2^17",
        ("repro.primitives.list_ranking",),
        "benchmarks/bench_ablation_list_ranking.py"),
    ExperimentSpec(
        "F1-F12", "Figures 1-12",
        "Every worked figure of the paper is rebuilt programmatically and "
        "its stated properties are checked.",
        "the exact examples of the paper",
        ("repro.io.drawing", "repro.core"),
        "examples/figure_gallery.py"),
]


def experiment_by_id(experiment_id: str) -> ExperimentSpec:
    """Look up one experiment (raises ``KeyError`` for unknown ids)."""
    for spec in EXPERIMENTS:
        if spec.experiment_id == experiment_id:
            return spec
    raise KeyError(experiment_id)
