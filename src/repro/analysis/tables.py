"""Plain-text / markdown table rendering for the benchmark harnesses.

The benchmarks print their result tables through these helpers so that the
rows EXPERIMENTS.md quotes can be regenerated verbatim with
``pytest benchmarks/ --benchmark-only``.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

__all__ = ["format_table", "format_markdown_table", "print_table"]


def _format_cell(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.01:
            return f"{value:.3g}"
        return f"{value:.3f}"
    return str(value)


def format_table(rows: Sequence[Dict[str, Any]],
                 columns: Optional[Sequence[str]] = None,
                 title: Optional[str] = None) -> str:
    """Fixed-width text table from a list of dict rows."""
    if not rows:
        return (title + "\n" if title else "") + "(no rows)"
    cols = list(columns) if columns else list(rows[0].keys())
    cells = [[_format_cell(r.get(c, "")) for c in cols] for r in rows]
    widths = [max(len(c), *(len(row[i]) for row in cells))
              for i, c in enumerate(cols)]
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(c.ljust(w) for c, w in zip(cols, widths))
    lines.append(header)
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(v.rjust(w) for v, w in zip(row, widths)))
    return "\n".join(lines)


def format_markdown_table(rows: Sequence[Dict[str, Any]],
                          columns: Optional[Sequence[str]] = None) -> str:
    """GitHub-flavoured markdown table from a list of dict rows."""
    if not rows:
        return "(no rows)"
    cols = list(columns) if columns else list(rows[0].keys())
    out = ["| " + " | ".join(cols) + " |",
           "|" + "|".join("---" for _ in cols) + "|"]
    for r in rows:
        out.append("| " + " | ".join(_format_cell(r.get(c, "")) for c in cols) + " |")
    return "\n".join(out)


def print_table(rows: Sequence[Dict[str, Any]],
                columns: Optional[Sequence[str]] = None,
                title: Optional[str] = None) -> None:
    """Print a fixed-width table (convenience for the benchmark harness)."""
    print()
    print(format_table(rows, columns, title))
