"""Validation of cotree invariants and of the analytic path-cover count.

Two kinds of checks live here:

* :func:`validate_cotree` — the structural properties (4)-(6) of the paper:
  arity, label alternation, and (for small graphs) agreement between the
  cotree's LCA-adjacency and an explicitly provided edge set.
* :func:`minimum_path_cover_size` — the recurrence of Lemma 2.4
  (``p(u) = p(v) + p(w)`` at 0-nodes, ``max(p(v) − L(w), 1)`` at leftist
  1-nodes), evaluated through the generic cotree-DP engine
  (:mod:`repro.core.dp`).  Every algorithm's output is compared against
  this number, and the brute-force baseline certifies the recurrence
  itself on small instances.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .binary import BinaryCotree
from .cotree import Cotree, CotreeError
from .graph import Graph

__all__ = [
    "validate_cotree",
    "validate_binary_cotree",
    "minimum_path_cover_size",
    "path_cover_sizes_per_node",
    "make_leftist",
]


def validate_cotree(tree: Cotree, graph: Optional[Graph] = None,
                    require_canonical: bool = True) -> None:
    """Validate cotree properties; optionally cross-check against a graph.

    Parameters
    ----------
    tree:
        the cotree to validate.
    graph:
        when given, the adjacency defined by property (6) (LCA is a 1-node)
        is compared edge-by-edge with ``graph`` — quadratic, so intended for
        test-sized inputs.
    require_canonical:
        when True, properties (4) (arity >= 2) and (5) (alternating labels)
        must hold; binarized or reduced trees should pass ``False``.
    """
    tree._validate_basic()
    if require_canonical and not tree.is_canonical():
        raise CotreeError("cotree is not canonical: an internal node has "
                          "fewer than two children or a same-labelled child")
    if graph is not None:
        if graph.n != tree.num_vertices:
            raise CotreeError(
                f"graph has {graph.n} vertices, cotree has {tree.num_vertices}")
        adj = tree.adjacency_sets()
        for u in range(graph.n):
            if adj.get(u, set()) != graph.adj[u]:
                raise CotreeError(
                    f"cotree adjacency of vertex {u} disagrees with the graph")


def validate_binary_cotree(tree: BinaryCotree, leftist: bool = False) -> None:
    """Validate a binary cotree; with ``leftist=True`` also check
    ``L(left) >= L(right)`` at every internal node."""
    tree.validate()
    if leftist:
        counts = tree.subtree_leaf_counts()
        for u in tree.internal_nodes:
            if counts[tree.left[u]] < counts[tree.right[u]]:
                raise CotreeError(
                    f"node {u} violates the leftist condition: "
                    f"L(left)={counts[tree.left[u]]} < "
                    f"L(right)={counts[tree.right[u]]}")


def make_leftist(tree: BinaryCotree) -> BinaryCotree:
    """Return a copy of ``tree`` with children swapped wherever needed so that
    every internal node satisfies ``L(left) >= L(right)`` (sequential
    reference implementation; the PRAM-costed one is
    :func:`repro.core.leftist.leftist_reorder`)."""
    counts = tree.subtree_leaf_counts()
    to_swap = [int(u) for u in tree.internal_nodes
               if counts[tree.left[u]] < counts[tree.right[u]]]
    return tree.swap_children(to_swap)


def path_cover_sizes_per_node(tree: BinaryCotree) -> np.ndarray:
    """``p(u)`` for every node of a *leftist* binary cotree (Lemma 2.4).

    * leaves: ``p = 1``;
    * 0-nodes: ``p(u) = p(v) + p(w)``;
    * 1-nodes: ``p(u) = max(p(v) − L(w), 1)`` where ``v``/``w`` are the
      left/right children (the tree must be leftist for this to be the
      minimum).

    The recurrence is one instance of the generic cotree-DP engine
    (:data:`repro.core.PATH_COVER_SIZE_DP`); the engine evaluates the
    symmetric multiway form ``max(1, max_child (p + L) - L(u))``, which
    coincides with the left/right form above exactly on leftist trees —
    and, unlike it, stays minimum on non-leftist inputs.
    """
    # imported lazily: repro.cograph must stay importable without repro.core
    from ..core.dp import PATH_COVER_SIZE_DP, run_cotree_dp
    return run_cotree_dp(PATH_COVER_SIZE_DP, tree).values["p"]


def minimum_path_cover_size(tree: Cotree) -> int:
    """The number of paths in a minimum path cover of the cograph.

    Evaluates the Lemma 2.4 recurrence at the root through the cotree-DP
    engine — directly on the general cotree, no binarization needed.  This
    is the analytic ground truth used throughout the tests and benchmarks.
    """
    from ..core.dp import PATH_COVER_SIZE_DP, run_cotree_dp
    return run_cotree_dp(PATH_COVER_SIZE_DP, tree).root("p")
