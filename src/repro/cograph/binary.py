"""Binary cotree (``Tb(G)``) in structure-of-arrays form.

The parallel algorithm operates on a *binarized* cotree in which every
internal node has exactly two children (Fig. 3 of the paper).  Binarisation
replaces a node with ``k >= 3`` children by a chain of ``k - 1`` binary nodes
carrying the same label; because union and join are associative this does not
change the represented cograph, although property (5) (alternating labels) no
longer holds along the introduced chains.

The arrays are laid out so that the parallel primitives
(:mod:`repro.primitives`) can operate on them directly with NumPy
vectorisation — this is the "structure of arrays, not array of structures"
idiom recommended for HPC-style Python.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from .cotree import JOIN, LEAF, UNION, Cotree, CotreeError

__all__ = ["BinaryCotree", "binarize_cotree"]


@dataclass
class BinaryCotree:
    """A full binary cotree in structure-of-arrays form.

    Attributes
    ----------
    kind:
        ``int8`` array of node kinds (:data:`~repro.cograph.cotree.LEAF`,
        :data:`~repro.cograph.cotree.UNION`,
        :data:`~repro.cograph.cotree.JOIN`).
    left, right:
        child arrays; ``-1`` for leaves.
    parent:
        parent array; ``-1`` for the root.
    leaf_vertex:
        vertex id carried by each leaf node (``-1`` for internal nodes).
    root:
        root node id.

    A binary cotree over ``n`` vertices has exactly ``2n - 1`` nodes when
    ``n >= 1`` (every internal node has two children).
    """

    kind: np.ndarray
    left: np.ndarray
    right: np.ndarray
    parent: np.ndarray
    leaf_vertex: np.ndarray
    root: int

    def __post_init__(self) -> None:
        self.kind = np.asarray(self.kind, dtype=np.int8)
        self.left = np.asarray(self.left, dtype=np.int64)
        self.right = np.asarray(self.right, dtype=np.int64)
        self.parent = np.asarray(self.parent, dtype=np.int64)
        self.leaf_vertex = np.asarray(self.leaf_vertex, dtype=np.int64)
        self.root = int(self.root)

    # ------------------------------------------------------------------ #
    # properties
    # ------------------------------------------------------------------ #

    @property
    def num_nodes(self) -> int:
        """Total number of nodes."""
        return len(self.kind)

    @property
    def num_vertices(self) -> int:
        """Number of leaves (= cograph vertices)."""
        return int(np.count_nonzero(self.kind == LEAF))

    @property
    def leaves(self) -> np.ndarray:
        """Leaf node ids."""
        return np.flatnonzero(self.kind == LEAF)

    @property
    def internal_nodes(self) -> np.ndarray:
        """Internal node ids."""
        return np.flatnonzero(self.kind != LEAF)

    def is_leaf(self, node: int) -> bool:
        """True when ``node`` is a leaf."""
        return bool(self.kind[node] == LEAF)

    def is_left_child(self, node: int) -> bool:
        """True when ``node`` is the left child of its parent."""
        p = self.parent[node]
        return p != -1 and self.left[p] == node

    def is_right_child(self, node: int) -> bool:
        """True when ``node`` is the right child of its parent."""
        p = self.parent[node]
        return p != -1 and self.right[p] == node

    def vertex_to_leaf(self) -> dict:
        """Mapping vertex id -> leaf node id."""
        return {int(self.leaf_vertex[u]): int(u) for u in self.leaves}

    # ------------------------------------------------------------------ #
    # traversal helpers (sequential; used by tests and baselines)
    # ------------------------------------------------------------------ #

    def postorder(self) -> List[int]:
        """Node ids in postorder."""
        order: List[int] = []
        stack: List[int] = [self.root]
        while stack:
            u = stack.pop()
            order.append(u)
            if self.kind[u] != LEAF:
                stack.append(int(self.left[u]))
                stack.append(int(self.right[u]))
        order.reverse()
        return order

    def preorder(self) -> List[int]:
        """Node ids in preorder."""
        order: List[int] = []
        stack: List[int] = [self.root]
        while stack:
            u = stack.pop()
            order.append(u)
            if self.kind[u] != LEAF:
                stack.append(int(self.right[u]))
                stack.append(int(self.left[u]))
        return order

    def inorder_leaves(self) -> List[int]:
        """Vertex ids of the leaves in left-to-right order."""
        out: List[int] = []
        stack: List[Tuple[int, bool]] = [(self.root, False)]
        while stack:
            u, expanded = stack.pop()
            if self.kind[u] == LEAF:
                out.append(int(self.leaf_vertex[u]))
            elif expanded:
                pass
            else:
                stack.append((int(self.right[u]), False))
                stack.append((int(self.left[u]), False))
        return out

    def depth(self) -> np.ndarray:
        """Depth of each node (root depth 0)."""
        d = np.zeros(self.num_nodes, dtype=np.int64)
        for u in self.preorder():
            if self.kind[u] != LEAF:
                d[self.left[u]] = d[u] + 1
                d[self.right[u]] = d[u] + 1
        return d

    def height(self) -> int:
        """Tree height in edges."""
        if self.num_nodes <= 1:
            return 0
        return int(self.depth().max())

    def subtree_leaf_counts(self) -> np.ndarray:
        """``L(u)`` — number of leaf descendants — for every node (sequential)."""
        counts = np.zeros(self.num_nodes, dtype=np.int64)
        for u in self.postorder():
            if self.kind[u] == LEAF:
                counts[u] = 1
            else:
                counts[u] = counts[self.left[u]] + counts[self.right[u]]
        return counts

    # ------------------------------------------------------------------ #
    # validation / conversion
    # ------------------------------------------------------------------ #

    def validate(self) -> None:
        """Check structural invariants; raise :class:`CotreeError` on failure."""
        n = self.num_nodes
        if not (len(self.left) == len(self.right) == len(self.parent)
                == len(self.leaf_vertex) == n):
            raise CotreeError("array length mismatch in BinaryCotree")
        if self.parent[self.root] != -1:
            raise CotreeError("root has a parent")
        for u in range(n):
            if self.kind[u] == LEAF:
                if self.left[u] != -1 or self.right[u] != -1:
                    raise CotreeError(f"leaf {u} has children")
                if self.leaf_vertex[u] < 0:
                    raise CotreeError(f"leaf {u} has no vertex id")
            else:
                l, r = int(self.left[u]), int(self.right[u])
                if l == -1 or r == -1:
                    raise CotreeError(f"internal node {u} is not binary")
                if self.parent[l] != u or self.parent[r] != u:
                    raise CotreeError(f"parent pointers inconsistent at {u}")
        # reachability
        if len(self.postorder()) != n:
            raise CotreeError("unreachable nodes in BinaryCotree")
        if self.num_vertices >= 1 and n != 2 * self.num_vertices - 1:
            raise CotreeError("a full binary tree over k leaves must have "
                              "2k-1 nodes")

    def to_cotree(self) -> Cotree:
        """Convert back to an arbitrary-arity :class:`Cotree` (same shape)."""
        children = [[] for _ in range(self.num_nodes)]
        for u in range(self.num_nodes):
            if self.kind[u] != LEAF:
                children[u] = [int(self.left[u]), int(self.right[u])]
        return Cotree(self.kind, children, self.leaf_vertex, self.root)

    def copy(self) -> "BinaryCotree":
        """Deep copy."""
        return BinaryCotree(self.kind.copy(), self.left.copy(),
                            self.right.copy(), self.parent.copy(),
                            self.leaf_vertex.copy(), self.root)

    def swap_children(self, nodes: Sequence[int]) -> "BinaryCotree":
        """Return a copy with left/right swapped at the given nodes."""
        out = self.copy()
        nodes = np.asarray(list(nodes), dtype=np.int64)
        if len(nodes):
            tmp = out.left[nodes].copy()
            out.left[nodes] = out.right[nodes]
            out.right[nodes] = tmp
        return out


def binarize_cotree(tree: Cotree) -> BinaryCotree:
    """Binarize a cotree: replace every node with ``k >= 3`` children by a
    left-deep chain of ``k - 1`` binary nodes with the same label (Fig. 3).

    The sequential version; the PRAM-costed version used by the optimal
    pipeline lives in :mod:`repro.core.binarize` and produces identical
    output.

    A single-vertex cotree maps to a single-leaf binary cotree.

    Raises
    ------
    CotreeError
        if the input has a unary internal node (call
        :meth:`Cotree.canonicalize` first).
    """
    if tree.num_vertices == 0:
        raise CotreeError("cannot binarize an empty cotree")

    kinds: List[int] = []
    lefts: List[int] = []
    rights: List[int] = []
    leaf_vertex: List[int] = []

    def new_node(kind: int, vertex: int = -1) -> int:
        kinds.append(kind)
        lefts.append(-1)
        rights.append(-1)
        leaf_vertex.append(vertex)
        return len(kinds) - 1

    # Iterative postorder so that arbitrarily deep cotrees (e.g. caterpillar
    # cotrees used in the naive-parallelisation benchmarks) do not hit the
    # Python recursion limit.
    built_of: dict = {}
    for u in tree.postorder():
        if tree.kind[u] == LEAF:
            built_of[u] = new_node(LEAF, int(tree.leaf_vertex[u]))
            continue
        cs = tree.children[u]
        if len(cs) < 2:
            raise CotreeError(
                f"internal node {u} has {len(cs)} child(ren); canonicalize "
                "the cotree before binarizing")
        built = [built_of[c] for c in cs]
        # left-deep chain: u1 = (c1, c2), u_i = (u_{i-1}, c_{i+1})
        acc = built[0]
        for nxt in built[1:]:
            node = new_node(int(tree.kind[u]))
            lefts[node] = acc
            rights[node] = nxt
            acc = node
        built_of[u] = acc
    root = built_of[tree.root]

    n = len(kinds)
    parent = np.full(n, -1, dtype=np.int64)
    for u in range(n):
        if lefts[u] != -1:
            parent[lefts[u]] = u
            parent[rights[u]] = u
    out = BinaryCotree(np.array(kinds, dtype=np.int8),
                       np.array(lefts, dtype=np.int64),
                       np.array(rights, dtype=np.int64),
                       parent,
                       np.array(leaf_vertex, dtype=np.int64),
                       root)
    out.validate()
    return out
