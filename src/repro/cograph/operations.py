"""Cograph algebra on cotrees: disjoint union, join and complement.

These are the three closure operations from the recursive definition of
cographs (items (1)-(3) in the paper's introduction).  All operations act on
cotrees and return canonical cotrees, so the class is closed under them by
construction.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from .cotree import JOIN, LEAF, UNION, Cotree, CotreeError

__all__ = [
    "union_cotrees",
    "join_cotrees",
    "complement_cotree",
    "relabel_disjoint",
]


def relabel_disjoint(trees: Sequence[Cotree]) -> List[Cotree]:
    """Relabel the vertex ids of a sequence of cotrees so they are disjoint
    and consecutive (``0 .. total-1``), keeping each tree's internal order.
    """
    out: List[Cotree] = []
    offset = 0
    for t in trees:
        mapping = {}
        for i, v in enumerate(sorted(int(x) for x in t.vertices)):
            mapping[v] = offset + i
        out.append(t.relabel_vertices(mapping))
        offset += t.num_vertices
    return out


def _combine(kind_code: int, trees: Sequence[Cotree], relabel: bool) -> Cotree:
    if len(trees) == 0:
        raise CotreeError("need at least one cotree to combine")
    if len(trees) == 1:
        return trees[0]
    if relabel:
        trees = relabel_disjoint(trees)
    else:
        all_vertices: List[int] = []
        for t in trees:
            all_vertices.extend(int(v) for v in t.vertices)
        if len(set(all_vertices)) != len(all_vertices):
            raise CotreeError(
                "cotrees share vertex ids; pass relabel=True or relabel "
                "the inputs first")

    kinds: List[int] = [kind_code]
    children: List[List[int]] = [[]]
    leaf_vertex: List[int] = [-1]

    for t in trees:
        base = len(kinds)
        kinds.extend(int(k) for k in t.kind)
        leaf_vertex.extend(int(v) for v in t.leaf_vertex)
        for cs in t.children:
            children.append([c + base for c in cs])
        children[0].append(t.root + base)

    combined = Cotree(kinds, children, leaf_vertex, 0)
    return combined.canonicalize()


def union_cotrees(*trees: Cotree, relabel: bool = False) -> Cotree:
    """Disjoint union of cographs, as a canonical cotree.

    With ``relabel=True`` the vertex ids of the inputs are shifted so they do
    not clash; otherwise the inputs must already have disjoint vertex ids.
    """
    return _combine(UNION, list(trees), relabel)


def join_cotrees(*trees: Cotree, relabel: bool = False) -> Cotree:
    """Join of cographs (every vertex of one adjacent to every vertex of the
    others), as a canonical cotree."""
    return _combine(JOIN, list(trees), relabel)


def complement_cotree(tree: Cotree) -> Cotree:
    """Complement of a cograph: swap 0-nodes and 1-nodes of the cotree.

    The complement of a cograph is again a cograph (this is the defining
    "complement-reducible" property); on the cotree it amounts to flipping
    every internal label.
    """
    kind = tree.kind.copy()
    internal = kind != LEAF
    flipped = kind.copy()
    flipped[internal & (kind == UNION)] = JOIN
    flipped[internal & (kind == JOIN)] = UNION
    out = Cotree(flipped, tree.children, tree.leaf_vertex, tree.root)
    return out.canonicalize()
