"""Flat (CSR) cotree — the canonical in-memory form of the hot path.

:class:`FlatCotree` stores an arbitrary-arity cotree as five NumPy arrays
(kinds, CSR child offsets/indices, parents, leaf vertex ids) instead of the
object-per-node ``children`` lists of :class:`~repro.cograph.cotree.Cotree`.
Every pipeline stage, the input adapters and the solution cache operate on
this struct-of-arrays layout directly, so no per-node Python objects are
touched between "instance adapted" and "cover extracted".

The module also hosts the *iterative* canonical-form kernel:

* :meth:`FlatCotree.canonicalize` restores cotree properties (4) and (5)
  (no unary internal nodes, alternating labels) with pointer-jumping over
  arrays — ``O(log n)`` vectorized rounds, no recursion, no fixpoint loop
  over Python lists;
* :func:`canonical_key` produces a hashable canonical form (children ordered
  by their minimum leaf vertex, serialised as preorder byte strings) shared
  by :class:`~repro.api.cache.SolutionCache` and the equality helpers.
  Unlike the old recursive nested-tuple key it survives arbitrarily deep
  trees (a depth-5000 caterpillar is a regression test) and costs
  ``O(n log n)`` array work instead of quadratic ``repr``-sorting.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from .._dfs import (
    HAVE_SPARSE_DFS as _HAVE_SPARSE_DFS,
    chase_pointers as _chase,
    depth_by_doubling as _depth_by_doubling,
)
from .cotree import LEAF, PRIME, Cotree, CotreeError

if _HAVE_SPARSE_DFS:  # pragma: no branch - scipy ships in CI and dev
    from scipy.sparse import csr_matrix as _csr_matrix
    from scipy.sparse.csgraph import depth_first_order as _depth_first_order

__all__ = ["FlatCotree", "as_flat_cotree", "canonical_key"]


class FlatCotree:
    """An arbitrary-arity rooted cotree in CSR struct-of-arrays form.

    Attributes
    ----------
    kind:
        ``int8`` array of node kinds (:data:`~repro.cograph.cotree.LEAF` /
        ``UNION`` / ``JOIN``).
    child_offset:
        ``int64`` array of length ``num_nodes + 1``; the children of node
        ``u`` are ``child_index[child_offset[u]:child_offset[u + 1]]``.
    child_index:
        flattened children array (CSR indices).
    parent:
        parent node of every node (``-1`` at the root).
    leaf_vertex:
        vertex id carried by each leaf (``-1`` for internal nodes).
    root:
        root node id.
    q_offset / q_edge_u / q_edge_v:
        packed quotient-edge payload for :data:`~repro.cograph.cotree.PRIME`
        nodes (modular decomposition trees).  The quotient graph of prime
        node ``u`` has one vertex per child, numbered by **local child slot**
        (position inside ``children_of(u)``, so the payload survives node
        renumbering and forest packing); its edges are
        ``zip(q_edge_u[q_offset[u]:q_offset[u+1]],
        q_edge_v[q_offset[u]:q_offset[u+1]])`` with ``u < v`` per edge.
        Non-prime nodes have zero-width slices.  All three default to empty
        arrays, so plain cotrees carry no payload and stay bit-identical to
        the pre-MD layout.
    spider:
        ``int8`` per-node flag for prime nodes whose quotient is a spider
        (``0`` generic, ``1`` thin, ``2`` thick).  A spider-flagged prime
        lays its children out as ``[s_1..s_k, k_1..k_k, (r)]`` (feet, body,
        optional head) so closed-form DP combines need no edge scan.
    pre_validated:
        set ``True`` by trusted producers only — :meth:`canonicalize`
        output and verified wire-format loads
        (:func:`repro.io.wire.from_bytes` after its CRC check) — so
        pipeline stages may skip redundant full-array re-validation.
        Defaults to ``False`` for every directly constructed tree.
    """

    __slots__ = ("kind", "child_offset", "child_index", "parent",
                 "leaf_vertex", "root", "pre_validated",
                 "q_offset", "q_edge_u", "q_edge_v", "spider",
                 "_leaves", "_internal", "_vertices", "_degrees",
                 "_has_primes")

    def __init__(self, kind, child_offset, child_index, parent, leaf_vertex,
                 root: int, *, q_offset=None, q_edge_u=None, q_edge_v=None,
                 spider=None) -> None:
        self.kind = np.asarray(kind, dtype=np.int8)
        self.child_offset = np.asarray(child_offset, dtype=np.int64)
        self.child_index = np.asarray(child_index, dtype=np.int64)
        self.parent = np.asarray(parent, dtype=np.int64)
        self.leaf_vertex = np.asarray(leaf_vertex, dtype=np.int64)
        self.root = int(root)
        # set True only by trusted producers (a verified wire-format load,
        # canonicalize output): lets the pipeline skip redundant full-array
        # re-validation on the hot path
        self.pre_validated = False
        # lazily-computed derived arrays (hot in the DP level loop)
        self._leaves = None
        self._internal = None
        self._vertices = None
        self._degrees = None
        self._has_primes = None
        n = len(self.kind)
        if len(self.child_offset) != n + 1:
            raise CotreeError("child_offset must have num_nodes + 1 entries")
        if not (len(self.parent) == n == len(self.leaf_vertex)):
            raise CotreeError("kind, parent and leaf_vertex must have the "
                              "same length")
        empty = np.empty(0, dtype=np.int64)
        self.q_offset = empty if q_offset is None else \
            np.asarray(q_offset, dtype=np.int64)
        self.q_edge_u = empty if q_edge_u is None else \
            np.asarray(q_edge_u, dtype=np.int64)
        self.q_edge_v = empty if q_edge_v is None else \
            np.asarray(q_edge_v, dtype=np.int64)
        self.spider = np.empty(0, dtype=np.int8) if spider is None else \
            np.asarray(spider, dtype=np.int8)
        if bool(np.any(self.kind == PRIME)):
            if len(self.q_offset) != n + 1:
                raise CotreeError("a tree with prime nodes needs a quotient "
                                  "payload: q_offset must have num_nodes + 1 "
                                  "entries")
            if len(self.q_edge_u) != len(self.q_edge_v):
                raise CotreeError("q_edge_u and q_edge_v must have the same "
                                  "length")
            if len(self.spider) != n:
                raise CotreeError("spider must have one flag per node")

    # ------------------------------------------------------------------ #
    # conversions
    # ------------------------------------------------------------------ #

    @classmethod
    def from_cotree(cls, tree) -> "FlatCotree":
        """Convert a :class:`Cotree` or ``BinaryCotree`` (one linear pass)."""
        from .binary import BinaryCotree
        if isinstance(tree, FlatCotree):
            return tree
        if isinstance(tree, BinaryCotree):
            n = tree.num_nodes
            counts = ((tree.left != -1).astype(np.int64)
                      + (tree.right != -1).astype(np.int64))
            offset = np.zeros(n + 1, dtype=np.int64)
            np.cumsum(counts, out=offset[1:])
            index = np.empty(int(offset[-1]), dtype=np.int64)
            has_l = np.flatnonzero(tree.left != -1)
            has_r = np.flatnonzero(tree.right != -1)
            index[offset[has_l]] = tree.left[has_l]
            index[offset[has_r] + (tree.left[has_r] != -1)] = tree.right[has_r]
            return cls(tree.kind, offset, index, tree.parent,
                       tree.leaf_vertex, tree.root)
        if not isinstance(tree, Cotree):
            raise TypeError(f"cannot convert {type(tree).__name__} to "
                            f"FlatCotree")
        n = tree.num_nodes
        counts = np.fromiter(map(len, tree.children), dtype=np.int64, count=n)
        offset = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(counts, out=offset[1:])
        total = int(offset[-1])
        flat: List[int] = []
        for c in tree.children:
            flat += c
        index = np.asarray(flat, dtype=np.int64) if total else \
            np.empty(0, dtype=np.int64)
        return cls(tree.kind, offset, index, tree.parent, tree.leaf_vertex,
                   tree.root)

    def to_cotree(self) -> Cotree:
        """Convert back to a list-of-lists :class:`Cotree` (same node ids and
        child order)."""
        if self.has_primes:
            raise CotreeError("a modular decomposition tree with prime nodes "
                              "has no plain-Cotree form; keep it flat")
        flat = self.child_index.tolist()
        bounds = self.child_offset.tolist()
        children = [flat[bounds[u]:bounds[u + 1]]
                    for u in range(self.num_nodes)]
        return Cotree(self.kind, children, self.leaf_vertex, self.root)

    def copy(self) -> "FlatCotree":
        return FlatCotree(self.kind.copy(), self.child_offset.copy(),
                          self.child_index.copy(), self.parent.copy(),
                          self.leaf_vertex.copy(), self.root,
                          q_offset=self.q_offset.copy(),
                          q_edge_u=self.q_edge_u.copy(),
                          q_edge_v=self.q_edge_v.copy(),
                          spider=self.spider.copy())

    # ------------------------------------------------------------------ #
    # basic properties (mirror the Cotree surface)
    # ------------------------------------------------------------------ #

    @property
    def num_nodes(self) -> int:
        """Total number of cotree nodes."""
        return len(self.kind)

    @property
    def num_vertices(self) -> int:
        """Number of cograph vertices (= leaves)."""
        return len(self.leaves)

    @property
    def leaves(self) -> np.ndarray:
        """Array of leaf node ids (computed once, cached)."""
        if self._leaves is None:
            self._leaves = np.flatnonzero(self.kind == LEAF)
        return self._leaves

    @property
    def internal_nodes(self) -> np.ndarray:
        """Array of internal node ids (computed once, cached)."""
        if self._internal is None:
            self._internal = np.flatnonzero(self.kind != LEAF)
        return self._internal

    @property
    def vertices(self) -> np.ndarray:
        """Sorted array of vertex ids (computed once, cached)."""
        if self._vertices is None:
            self._vertices = np.sort(self.leaf_vertex[self.kind == LEAF])
        return self._vertices

    def degrees(self) -> np.ndarray:
        """Child count of every node (computed once, cached)."""
        if self._degrees is None:
            self._degrees = np.diff(self.child_offset)
        return self._degrees

    def children_of(self, node: int) -> np.ndarray:
        """Children of ``node`` (a CSR slice view)."""
        return self.child_index[self.child_offset[node]:
                                self.child_offset[node + 1]]

    # ------------------------------------------------------------------ #
    # modular decomposition payload
    # ------------------------------------------------------------------ #

    @property
    def has_primes(self) -> bool:
        """Whether any node is a :data:`~repro.cograph.cotree.PRIME` node
        (i.e. this is a proper modular decomposition tree, not a cotree)."""
        if self._has_primes is None:
            self._has_primes = bool(np.any(self.kind == PRIME))
        return self._has_primes

    @property
    def prime_nodes(self) -> np.ndarray:
        """Array of prime node ids (empty for plain cotrees)."""
        return np.flatnonzero(self.kind == PRIME)

    def quotient_of(self, node: int) -> Tuple[np.ndarray, np.ndarray]:
        """Quotient-graph edges of prime ``node`` as ``(u, v)`` arrays of
        **local child slots** (``u < v`` per edge)."""
        lo = self.q_offset[node]
        hi = self.q_offset[node + 1]
        return self.q_edge_u[lo:hi], self.q_edge_v[lo:hi]

    # ------------------------------------------------------------------ #
    # canonical form (vectorized)
    # ------------------------------------------------------------------ #

    def is_canonical(self) -> bool:
        """Vectorized check of cotree properties (4) and (5)."""
        internal = self.kind != LEAF
        if not internal.any():
            return True
        deg = self.degrees()
        if np.any(deg[internal] < 2):
            return False
        # no internal child shares its parent's label (prime nodes never
        # merge: adjacent primes are legal in a modular decomposition tree)
        child = np.flatnonzero((self.parent != -1) & internal
                               & (self.kind != PRIME))
        return not bool(np.any(self.kind[child] ==
                               self.kind[self.parent[child]]))

    def canonicalize(self) -> "FlatCotree":
        """Equivalent canonical cotree via pointer jumping (no recursion).

        Phase A splices out unary internal nodes (their child count is
        invariant under splicing, so "unary" can be read off the input);
        phase B merges maximal same-label clusters of the spliced tree into
        their topmost node.  Both phases are ``O(log n)`` rounds of array
        jumps.  Children of the result are ordered by original node id.
        """
        n = self.num_nodes
        if n == 0:
            return self
        if self.has_primes:
            # md_tree emits canonical trees; renumbering would invalidate
            # the local-slot quotient payload, so reject the rare non-
            # canonical case instead of silently corrupting it.
            if self.is_canonical():
                return self
            raise CotreeError("cannot canonicalize a tree with prime nodes")
        kind = self.kind
        parent = self.parent
        internal = kind != LEAF
        deg = self.degrees()
        unary = internal & (deg == 1)

        # ---- phase A: nearest non-unary ancestor-or-self ----------------- #
        # g(v) = v for kept nodes, parent(v) for unary nodes; chase to the
        # fixpoint.  A unary chain above the root resolves to -1, which makes
        # its first non-unary descendant the new root.
        g = np.where(unary, parent, np.arange(n, dtype=np.int64))
        g = _chase(g)
        kept = ~unary
        # effective parent in the spliced tree
        ep = np.full(n, -1, dtype=np.int64)
        has_p = parent != -1
        ep[has_p] = g[parent[has_p]]

        # ---- phase B: same-label cluster tops ----------------------------- #
        idx = np.flatnonzero(kept & internal & (ep != -1))
        same = np.zeros(n, dtype=bool)
        same[idx] = kind[ep[idx]] == kind[idx]
        h = np.where(same, ep, np.arange(n, dtype=np.int64))
        top = _chase(h)

        survives = kept & ~same
        # final parent of every surviving node: the cluster top of its
        # effective parent
        fp = np.full(n, -1, dtype=np.int64)
        sv = np.flatnonzero(survives)
        sv_ep = ep[sv]
        with_p = sv_ep != -1
        fp[sv[with_p]] = top[sv_ep[with_p]]

        # ---- compaction --------------------------------------------------- #
        remap = np.full(n, -1, dtype=np.int64)
        remap[sv] = np.arange(len(sv), dtype=np.int64)
        new_kind = kind[sv]
        new_parent = np.where(fp[sv] != -1, remap[np.maximum(fp[sv], 0)], -1)
        new_leaf_vertex = self.leaf_vertex[sv]
        m = len(sv)
        # children grouped by new parent, ordered by old node id (np.argsort
        # with a stable kind keeps ties deterministic; sv is already sorted,
        # so sorting by parent alone with a stable sort preserves id order)
        child_nodes = np.flatnonzero(new_parent != -1)
        order = child_nodes[np.argsort(new_parent[child_nodes],
                                       kind="stable")]
        counts = np.bincount(new_parent[child_nodes], minlength=m)
        offset = np.zeros(m + 1, dtype=np.int64)
        np.cumsum(counts, out=offset[1:])
        roots = np.flatnonzero(new_parent == -1)
        if len(roots) != 1:  # pragma: no cover - structural invariant
            raise CotreeError("canonicalize produced a forest")
        out = FlatCotree(new_kind, offset, order, new_parent,
                         new_leaf_vertex, int(roots[0]))
        # canonical by construction (unary nodes spliced, clusters merged):
        # downstream stages may skip their canonical re-scan
        out.pre_validated = True
        return out

    # ------------------------------------------------------------------ #
    # dunder / misc
    # ------------------------------------------------------------------ #

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"FlatCotree(num_vertices={self.num_vertices}, "
                f"num_nodes={self.num_nodes})")

    def __eq__(self, other: object) -> bool:
        """Structural equality of the rooted, ordered trees."""
        if not isinstance(other, FlatCotree):
            return NotImplemented
        return (self.root == other.root
                and np.array_equal(self.kind, other.kind)
                and np.array_equal(self.child_offset, other.child_offset)
                and np.array_equal(self.child_index, other.child_index)
                and np.array_equal(self.leaf_vertex, other.leaf_vertex)
                and np.array_equal(self.q_offset, other.q_offset)
                and np.array_equal(self.q_edge_u, other.q_edge_u)
                and np.array_equal(self.q_edge_v, other.q_edge_v))

    def __hash__(self) -> int:
        return hash(canonical_key(self))


def as_flat_cotree(tree) -> FlatCotree:
    """Coerce a ``Cotree`` / ``BinaryCotree`` / ``FlatCotree`` to flat form."""
    return FlatCotree.from_cotree(tree)


# --------------------------------------------------------------------------- #
# array kernels
# --------------------------------------------------------------------------- #

def _preorder_with_sibling_keys(parent: np.ndarray, root: int,
                                sibling_key: np.ndarray) -> np.ndarray:
    """Preorder numbers of an n-ary tree visiting siblings by ascending key.

    Uses the C-level sparse DFS when scipy is present (after relabelling the
    nodes so that id order realises the requested sibling order), otherwise
    an explicit-stack traversal — both recursion-free.
    """
    n = len(parent)
    order = np.lexsort((sibling_key, parent))   # children grouped per parent
    if _HAVE_SPARSE_DFS and n > 1:
        pi = np.empty(n, dtype=np.int64)
        pi[order] = np.arange(n, dtype=np.int64)
        child = np.flatnonzero(parent != -1)
        rows = pi[parent[child]]
        cols = pi[child]
        g = _csr_matrix((np.ones(len(child), dtype=np.int8), (rows, cols)),
                        shape=(n, n))
        seq = _depth_first_order(g, int(pi[root]), directed=True,
                                 return_predecessors=False)
        if len(seq) == n:
            pre_new = np.empty(n, dtype=np.int64)
            pre_new[np.asarray(seq, dtype=np.int64)] = np.arange(
                n, dtype=np.int64)
            return pre_new[pi]
        # fall through (unreachable nodes) to the stack traversal
    # CSR of children in sibling-key order for the explicit stack
    child_sorted = order[parent[order] != -1]
    counts = np.bincount(parent[child_sorted], minlength=n)
    offset = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(counts, out=offset[1:])
    kids = child_sorted.tolist()
    bounds = offset.tolist()
    pre = np.empty(n, dtype=np.int64)
    stack = [int(root)]
    k = 0
    while stack:
        u = stack.pop()
        pre[u] = k
        k += 1
        stack.extend(reversed(kids[bounds[u]:bounds[u + 1]]))
    return pre


def _subtree_min_vertex(flat: FlatCotree, depth: np.ndarray) -> np.ndarray:
    """Minimum leaf vertex id in every node's subtree (height-independent).

    Two DFS passes (siblings by ascending, then descending, node id) give
    preorder and — via ``post = n - 1 - mirrored_pre`` — postorder, hence
    ``size = post - pre + depth + 1`` and the contiguous preorder interval
    of every subtree; a doubling sparse table then answers all the interval
    minima at once.  ``O(n log n)`` array work, no per-level loop, so deep
    caterpillars cost the same as balanced trees.
    """
    n = flat.num_nodes
    parent = flat.parent
    ids = np.arange(n, dtype=np.int64)
    pre = _preorder_with_sibling_keys(parent, flat.root, ids)
    mpre = _preorder_with_sibling_keys(parent, flat.root, -ids)
    post = n - 1 - mpre
    size = post - pre + depth + 1

    by_pre = np.empty(n, dtype=np.int64)
    by_pre[pre] = ids                                # node at preorder slot
    INF = np.int64(2 ** 62)
    values = np.where(flat.kind[by_pre] == LEAF,
                      flat.leaf_vertex[by_pre], INF)

    # sparse table: tables[k][i] = min(values[i : i + 2**k])
    tables = [values]
    while (1 << len(tables)) <= n:
        span = 1 << (len(tables) - 1)
        prev = tables[-1]
        tables.append(np.minimum(prev[:-span], prev[span:]))

    # range minimum over [pre, pre + size): two overlapping power-of-two
    # windows, grouped by window level
    k = np.zeros(n, dtype=np.int64)
    big = size > 1
    k[big] = np.floor(np.log2(size[big].astype(np.float64))).astype(np.int64)
    out = np.empty(n, dtype=np.int64)
    for kk in np.unique(k):
        sel = np.flatnonzero(k == kk)
        tbl = tables[int(kk)]
        span = np.int64(1) << int(kk)
        out[sel] = np.minimum(tbl[pre[sel]],
                              tbl[pre[sel] + size[sel] - span])
    return out


def canonical_key(tree) -> Tuple:
    """A hashable canonical form of a cotree (iterative, array-based).

    Two cotrees get the same key iff they represent the same labelled
    cograph: the tree is canonicalised (properties (4) and (5)) and every
    node's children are ordered by the minimum vertex id in their subtree —
    sibling subtrees have disjoint leaf sets, so this order is total and
    independent of the input's child order.  The ordered canonical tree is
    then serialised as its preorder kind/depth/vertex sequences, which
    reconstruct it uniquely.

    Accepts :class:`Cotree`, ``BinaryCotree`` and :class:`FlatCotree`
    inputs; never recurses, so arbitrarily deep trees are safe.
    """
    flat = FlatCotree.from_cotree(tree)
    if flat.num_vertices > 1 and not flat.is_canonical():
        flat = flat.canonicalize()
    n = flat.num_nodes
    if n == 0:
        return ("cotree", 0)
    if n == 1:
        return ("cotree", 1, int(flat.leaf_vertex[flat.root]))
    depth = _depth_by_doubling(flat.parent)
    minv = _subtree_min_vertex(flat, depth)
    pre = _preorder_with_sibling_keys(flat.parent, flat.root, minv)
    by_pre = np.empty(n, dtype=np.int64)
    by_pre[pre] = np.arange(n, dtype=np.int64)
    key = ("cotree", n,
           flat.kind[by_pre].tobytes(),
           depth[by_pre].astype(np.int64).tobytes(),
           flat.leaf_vertex[by_pre].astype(np.int64).tobytes())
    if not flat.has_primes:
        return key
    # fold the quotient-edge payload in, expressed in *canonical* child
    # numbering (rank by min subtree vertex — the key's sibling order), so
    # equal labelled graphs agree regardless of input child order.  Plain
    # cotrees never reach this branch: their key stays byte-identical to
    # the pre-MD format.
    primes = flat.prime_nodes
    parts = []
    for u in primes[np.argsort(pre[primes])]:
        cs = flat.children_of(u)
        rank = np.empty(len(cs), dtype=np.int64)
        rank[np.argsort(minv[cs], kind="stable")] = np.arange(
            len(cs), dtype=np.int64)
        eu, ev = flat.quotient_of(u)
        a = rank[eu]
        b = rank[ev]
        enc = np.minimum(a, b) * len(cs) + np.maximum(a, b)
        parts.append(np.int64(len(cs)).tobytes()
                     + np.sort(enc).astype(np.int64).tobytes())
    return key + ("prime", b"".join(parts))
