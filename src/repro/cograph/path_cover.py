"""The :class:`PathCover` result container and its validation logic.

A *path cover* of a graph is a set of vertex-disjoint simple paths whose union
contains every vertex; a *minimum* path cover uses the fewest paths.  All
algorithms in this library (the paper's parallel algorithm and every baseline)
return their answer as a :class:`PathCover`, and the validators here are the
single source of truth the test-suite uses to decide whether an answer is
correct.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence, Union

from .binary import BinaryCotree
from .cotree import Cotree
from .graph import Graph
from .lca import CographAdjacencyOracle

__all__ = ["PathCover", "PathCoverError"]


class PathCoverError(ValueError):
    """Raised when a claimed path cover is invalid."""


@dataclass
class PathCover:
    """A set of vertex-disjoint paths, each a list of vertex ids.

    Attributes
    ----------
    paths:
        list of paths; each path is a list of vertex ids in traversal order.
        Single vertices are length-1 paths.
    """

    paths: List[List[int]] = field(default_factory=list)

    # ------------------------------------------------------------------ #
    # basic accessors
    # ------------------------------------------------------------------ #

    @property
    def num_paths(self) -> int:
        """Number of paths in the cover."""
        return len(self.paths)

    @property
    def num_vertices(self) -> int:
        """Total number of vertices covered."""
        return sum(len(p) for p in self.paths)

    def covered_vertices(self) -> List[int]:
        """All covered vertex ids (unsorted, with any duplicates preserved)."""
        out: List[int] = []
        for p in self.paths:
            out.extend(p)
        return out

    def is_hamiltonian_path(self, n: int) -> bool:
        """True when the cover is a single path over all ``n`` vertices."""
        return self.num_paths == 1 and len(self.paths[0]) == n

    def canonical(self) -> "PathCover":
        """A canonical form for comparisons: each path oriented so its first
        endpoint is the smaller, paths sorted by their vertex sequence."""
        norm = []
        for p in self.paths:
            q = list(p)
            if q and q[-1] < q[0]:
                q = q[::-1]
            norm.append(q)
        return PathCover(sorted(norm))

    # ------------------------------------------------------------------ #
    # validation
    # ------------------------------------------------------------------ #

    def validate(
        self,
        graph_or_tree: Union[Graph, Cotree, BinaryCotree, CographAdjacencyOracle],
        *,
        expected_num_vertices: Optional[int] = None,
        expected_num_paths: Optional[int] = None,
    ) -> None:
        """Check that this is a valid path cover.

        Verifies that (a) every vertex appears exactly once over all paths,
        (b) consecutive vertices on each path are adjacent, and optionally
        (c) the number of paths equals ``expected_num_paths``.

        Parameters
        ----------
        graph_or_tree:
            adjacency source: a :class:`Graph`, a cotree (general or binary),
            or a prebuilt :class:`CographAdjacencyOracle`.
        expected_num_vertices:
            if given, the cover must contain exactly this many vertices; if
            omitted it is taken from the adjacency source.
        expected_num_paths:
            if given, the cover must have exactly this many paths (used to
            assert minimality against the counting formula).

        Raises
        ------
        PathCoverError
            with a descriptive message when any check fails.
        """
        adjacent, n = _adjacency_callable(graph_or_tree)
        if expected_num_vertices is not None:
            n = expected_num_vertices

        seen = set()
        for path in self.paths:
            if len(path) == 0:
                raise PathCoverError("empty path in cover")
            for v in path:
                if v in seen:
                    raise PathCoverError(f"vertex {v} appears twice in the cover")
                seen.add(v)
            for a, b in zip(path, path[1:]):
                if not adjacent(a, b):
                    raise PathCoverError(
                        f"consecutive vertices {a} and {b} are not adjacent")

        if n is not None:
            if len(seen) != n:
                missing = set(range(n)) - seen
                extra = seen - set(range(n))
                raise PathCoverError(
                    f"cover has {len(seen)} vertices, expected {n} "
                    f"(missing={sorted(missing)[:10]}, extra={sorted(extra)[:10]})")

        if expected_num_paths is not None and self.num_paths != expected_num_paths:
            raise PathCoverError(
                f"cover has {self.num_paths} paths, expected {expected_num_paths}")

    def is_valid(self, graph_or_tree, **kwargs) -> bool:
        """Boolean form of :meth:`validate`."""
        try:
            self.validate(graph_or_tree, **kwargs)
            return True
        except PathCoverError:
            return False

    # ------------------------------------------------------------------ #

    def __iter__(self):
        return iter(self.paths)

    def __len__(self) -> int:
        return len(self.paths)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"PathCover(num_paths={self.num_paths}, "
                f"num_vertices={self.num_vertices})")


def _adjacency_callable(source):
    """Normalise an adjacency source to ``(adjacent(u, v), n or None)``."""
    if isinstance(source, CographAdjacencyOracle):
        return source.adjacent, source.num_vertices
    if isinstance(source, Graph):
        return source.has_edge, source.n
    if isinstance(source, (Cotree, BinaryCotree)):
        oracle = CographAdjacencyOracle(source)
        return oracle.adjacent, oracle.num_vertices
    raise TypeError(f"cannot derive adjacency from {type(source)!r}")
