"""Cograph recognition: build a cotree from an arbitrary graph.

The paper takes the cotree as its input and cites He [12] for a parallel
recognition algorithm (``O(log^2 n)`` time, ``O(n+m)`` CRCW processors).  For
the library to be usable end-to-end from a plain graph we provide a
sequential recogniser based on the defining decomposition:

* if the graph has one vertex it is a leaf;
* if it is disconnected, the root is a 0-node whose children are the
  recursively-built cotrees of the connected components;
* if its complement is disconnected, the root is a 1-node whose children are
  the cotrees of the co-components;
* otherwise the graph is not a cograph (equivalently, it contains an induced
  ``P_4``).

The complement components are found with the standard "remaining set" BFS, so
no complement is materialised.  The recogniser also serves as an oracle in the
property-based tests: a graph is a cograph iff it is P4-free, and
:func:`find_induced_p4` produces the certificate for the negative case.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple

from .cotree import JOIN, UNION, Cotree
from .graph import Graph

__all__ = ["NotACographError", "cotree_from_graph", "is_cograph",
           "find_induced_p4"]


class NotACographError(ValueError):
    """Raised when the input graph is not a cograph (contains an induced P4)."""

    def __init__(self, message: str, certificate: Optional[Tuple[int, ...]] = None):
        super().__init__(message)
        #: an induced path on four vertices witnessing non-cograph-ness, when
        #: one was computed.
        self.certificate = certificate


def cotree_from_graph(graph: Graph) -> Cotree:
    """Build the canonical cotree of ``graph``.

    Raises
    ------
    NotACographError
        if the graph is not a cograph.
    """
    if graph.n == 0:
        raise ValueError("the empty graph has no cotree")

    # Work queue of (vertex list, placeholder) pairs; we build nested specs.
    def decompose(vertices: List[int]):
        if len(vertices) == 1:
            return vertices[0]
        sub, back = graph.induced_subgraph(vertices)
        comps = sub.connected_components()
        if len(comps) > 1:
            children = [decompose(sorted(back[v] for v in comp))
                        for comp in comps]
            return tuple(["union"] + children)
        cocomps = sub.complement_components()
        if len(cocomps) > 1:
            children = [decompose(sorted(back[v] for v in comp))
                        for comp in cocomps]
            return tuple(["join"] + children)
        p4 = find_induced_p4(sub)
        cert = tuple(back[v] for v in p4) if p4 else None
        raise NotACographError(
            f"graph is not a cograph: the induced subgraph on {len(vertices)} "
            "vertices is connected and co-connected", certificate=cert)

    import sys
    old = sys.getrecursionlimit()
    sys.setrecursionlimit(max(old, 4 * graph.n + 1000))
    try:
        spec = decompose(list(range(graph.n)))
    finally:
        sys.setrecursionlimit(old)
    tree = Cotree.from_nested(spec) if not isinstance(spec, int) \
        else Cotree.single_vertex(spec)
    return tree.canonicalize()


def is_cograph(graph: Graph) -> bool:
    """True when ``graph`` is a cograph (P4-free)."""
    try:
        cotree_from_graph(graph)
        return True
    except NotACographError:
        return False


def find_induced_p4(graph: Graph) -> Optional[Tuple[int, int, int, int]]:
    """Find an induced path ``a - b - c - d`` on four vertices, if any.

    Cographs are exactly the P4-free graphs, so this is the standard
    certificate of non-membership.  Quartic worst case; intended for the
    small graphs used in tests and error messages.
    """
    n = graph.n
    for b in range(n):
        for c in graph.adj[b]:
            if c <= b:
                continue
            for a in graph.adj[b]:
                if a == c or graph.has_edge(a, c):
                    continue
                for d in graph.adj[c]:
                    if d == b or d == a:
                        continue
                    if graph.has_edge(d, b) or graph.has_edge(d, a):
                        continue
                    return (a, b, c, d)
    return None
