"""Cograph / cotree generators used by the tests, examples and benchmarks.

The families below cover the shapes the paper's analysis cares about:

* *random* cotrees (average-case inputs for the scaling benchmarks),
* *balanced* cotrees (logarithmic height — friendly to the naive
  parallelisation, so they isolate the bracket machinery's overhead),
* *caterpillar* cotrees (linear height — the worst case that makes the naive
  parallelisation Θ(n log n) time and motivates the whole paper),
* *joins of independent sets* and *threshold graphs* (Hamiltonicity
  crossovers: the path-cover size of a join is ``max(p(v) − L(w), 1)``, so
  these families let benchmarks sweep across the ``p(v) = L(w)`` boundary),
* *unions of cliques* (maximally disconnected covers).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from .cotree import JOIN, LEAF, UNION, Cotree
from .operations import join_cotrees, union_cotrees

__all__ = [
    "single_vertex",
    "independent_set",
    "clique",
    "complete_bipartite",
    "union_of_cliques",
    "join_of_independent_sets",
    "balanced_cotree",
    "caterpillar_cotree",
    "threshold_cograph",
    "random_cotree",
    "random_binary_cotree_spec",
    "random_cograph_edges",
    "random_p4_sparse",
]


def single_vertex(vertex: int = 0) -> Cotree:
    """The one-vertex cograph."""
    return Cotree.single_vertex(vertex)


def independent_set(n: int) -> Cotree:
    """``n`` isolated vertices (a single 0-node for ``n >= 2``)."""
    if n < 1:
        raise ValueError("n must be >= 1")
    if n == 1:
        return single_vertex(0)
    return Cotree.from_nested(tuple(["union"] + list(range(n))))


def clique(n: int) -> Cotree:
    """The complete graph ``K_n`` (a single 1-node for ``n >= 2``)."""
    if n < 1:
        raise ValueError("n must be >= 1")
    if n == 1:
        return single_vertex(0)
    return Cotree.from_nested(tuple(["join"] + list(range(n))))


def complete_bipartite(a: int, b: int) -> Cotree:
    """The complete bipartite graph ``K_{a,b}`` = join of two independent sets."""
    return join_cotrees(independent_set(a), independent_set(b), relabel=True)


def union_of_cliques(sizes: Sequence[int]) -> Cotree:
    """Disjoint union of cliques of the given sizes.

    Its minimum path cover has exactly ``len(sizes)`` paths (one Hamiltonian
    path per clique), which makes it a convenient ground-truth family.
    """
    if not sizes:
        raise ValueError("need at least one clique")
    return union_cotrees(*[clique(s) for s in sizes], relabel=True)


def join_of_independent_sets(sizes: Sequence[int]) -> Cotree:
    """Join of independent sets of the given sizes (a complete multipartite
    graph).

    The minimum path cover of the join of independent sets of sizes
    ``s_1 >= s_2 >= ...`` has ``max(1, s_max - (total - s_max))`` paths, which
    the tests use as an independent analytic ground truth.
    """
    if not sizes:
        raise ValueError("need at least one part")
    return join_cotrees(*[independent_set(s) for s in sizes], relabel=True)


def balanced_cotree(depth: int, branching: int = 2, root_kind: int = JOIN) -> Cotree:
    """A perfectly balanced cotree of the given depth with alternating labels.

    The result has ``branching ** depth`` vertices and height ``depth`` — the
    friendliest possible shape for a level-by-level parallelisation.
    """
    if depth < 0:
        raise ValueError("depth must be >= 0")
    if branching < 2:
        raise ValueError("branching must be >= 2")

    counter = [0]

    def build(d: int, kind: int):
        if d == 0:
            v = counter[0]
            counter[0] += 1
            return v
        child_kind = UNION if kind == JOIN else JOIN
        op = "join" if kind == JOIN else "union"
        return tuple([op] + [build(d - 1, child_kind) for _ in range(branching)])

    return Cotree.from_nested(build(depth, root_kind))


def caterpillar_cotree(n: int, root_kind: int = JOIN,
                       alternate: bool = True) -> Cotree:
    """A maximally deep ("caterpillar") cotree over ``n`` vertices.

    Built as ``T_1 = leaf``, ``T_k = op_k(T_{k-1}, leaf)``.  Its binarized
    cotree has height ``n - 1``, which is the adversarial case for the naive
    bottom-up parallelisation discussed after Lemma 2.3: that scheme needs
    ``O(height x log n)`` time on this family while the paper's bracket-based
    algorithm stays at ``O(log n)``.

    With ``alternate=True`` the labels alternate up the spine (a canonical
    cotree — this is the cotree of a *threshold graph*); otherwise every spine
    node carries ``root_kind`` (useful for stressing the binarizer, which
    then merges the spine into one wide node when canonicalised).
    """
    if n < 1:
        raise ValueError("n must be >= 1")
    if n == 1:
        return single_vertex(0)
    spec = 0
    kind = root_kind if not alternate else (
        root_kind if (n - 1) % 2 == 1 else (UNION if root_kind == JOIN else JOIN))
    # Build bottom-up so that the *root* ends with root_kind when alternating.
    current_kind = kind
    for v in range(1, n):
        op = "join" if current_kind == JOIN else "union"
        spec = (op, spec, v)
        if alternate:
            current_kind = UNION if current_kind == JOIN else JOIN
    tree = Cotree.from_nested(spec)
    return tree.canonicalize()


def threshold_cograph(creation_sequence: Sequence[int]) -> Cotree:
    """The threshold graph of a 0/1 creation sequence, as a cotree.

    Reading the sequence left to right, a ``1`` adds a *dominating* vertex
    (joined to everything so far) and a ``0`` adds an *isolated* vertex.
    Threshold graphs are exactly the cographs whose cotree is a caterpillar,
    and they exercise the deepest `Tbl(G)` shapes.
    """
    seq = list(creation_sequence)
    if not seq:
        raise ValueError("creation sequence must be non-empty")
    tree = single_vertex(0)
    for i, bit in enumerate(seq[1:], start=1):
        addition = single_vertex(i)
        if bit:
            tree = join_cotrees(tree, addition)
        else:
            tree = union_cotrees(tree, addition)
    return tree


def random_binary_cotree_spec(n: int, rng: np.random.Generator,
                              join_prob: float = 0.5):
    """A random nested spec of a binary tree over ``n`` leaves with random
    0/1 labels (non-canonical in general)."""
    vertices = list(range(n))

    def build(vs: List[int]):
        if len(vs) == 1:
            return vs[0]
        split = int(rng.integers(1, len(vs)))
        op = "join" if rng.random() < join_prob else "union"
        return (op, build(vs[:split]), build(vs[split:]))

    return build(vertices)


def random_cotree(n: int, seed: Optional[int] = None,
                  join_prob: float = 0.5) -> Cotree:
    """A random *canonical* cotree over ``n`` vertices.

    A random binary tree with independently random labels is generated and
    canonicalised (same-label parent/child pairs merged), which yields a wide
    variety of arities and heights.  ``join_prob`` biases the graph density:
    1.0 gives a clique, 0.0 an independent set.
    """
    if n < 1:
        raise ValueError("n must be >= 1")
    rng = np.random.default_rng(seed)
    if n == 1:
        return single_vertex(0)
    spec = random_binary_cotree_spec(n, rng, join_prob)
    return Cotree.from_nested(spec).canonicalize()


def random_cograph_edges(n: int, seed: Optional[int] = None,
                         join_prob: float = 0.5):
    """Convenience: a random cograph as ``(cotree, edge list)``.

    The edge list is materialised from the cotree, so it is only suitable for
    moderate ``n``.
    """
    tree = random_cotree(n, seed=seed, join_prob=join_prob)
    adj = tree.adjacency_sets()
    edges = [(u, v) for u, nbrs in adj.items() for v in nbrs if u < v]
    return tree, sorted(edges)


def random_p4_sparse(n: int, seed: Optional[int] = None,
                     spider_prob: float = 0.5):
    """A random connected-or-not **P4-sparse** graph on ``n`` vertices.

    Built by the structure theorem (Jamison & Olariu): a P4-sparse graph is
    a single vertex, a disjoint union or join of two P4-sparse graphs, or a
    spider ``(S, K, R)`` whose head ``R`` is P4-sparse.  At each recursive
    step a spider is emitted with probability ``spider_prob`` (when enough
    vertices remain), so the resulting modular decomposition trees mix
    union/join nodes with thin and thick spider primes.  Returns a
    :class:`~repro.cograph.graph.Graph`; most draws are *not* cographs.
    """
    from .graph import Graph
    if n < 1:
        raise ValueError("n must be >= 1")
    rng = np.random.default_rng(seed)
    edges: List[tuple] = []

    def build(vs: List[int]) -> None:
        m = len(vs)
        if m == 1:
            return
        if m >= 4 and rng.random() < spider_prob:
            # spider (S, K, R): |S| = |K| = k >= 2, R may be empty
            k = int(rng.integers(2, m // 2 + 1))
            thin = bool(rng.random() < 0.5) or k < 3
            order = [vs[i] for i in rng.permutation(m)]
            feet, body = order[:k], order[k:2 * k]
            head = order[2 * k:]
            for i in range(k):                      # body clique
                for j in range(i + 1, k):
                    edges.append((body[i], body[j]))
            for i in range(k):                      # feet attachment
                if thin:
                    edges.append((feet[i], body[i]))
                else:
                    edges.extend((feet[i], body[j])
                                 for j in range(k) if j != i)
            for b in body:                          # head sees the body
                edges.extend((b, r) for r in head)
            if head:
                build(head)
            return
        split = int(rng.integers(1, m))
        lo, hi = vs[:split], vs[split:]
        if rng.random() < 0.5:                      # join of the two halves
            edges.extend((u, v) for u in lo for v in hi)
        build(lo)
        build(hi)

    build(list(range(n)))
    return Graph(n, edges)
