"""Packing many small cotrees into one disjoint CSR forest.

The level-wise DP engine (:mod:`repro.core.dp`) and the path-cover pipeline
are loop-free *per instance*: every stage is a handful of NumPy dispatches
over arrays indexed by node id.  At small ``n`` that fixed dispatch cost
dominates, so solving thousands of tiny instances one by one (or fanning
them out over a process pool, paying pickling on top) wastes almost all of
its time outside the actual arithmetic.

Because both the engine and the pipeline key everything off ``parent`` /
``child_offset`` arrays — and none of the kernels ever walks *across* a
``-1`` parent — a list of instances can be concatenated into one big
disjoint forest and swept in a single pass:

* :class:`FlatForest` is a :class:`FlatCotree` whose arrays hold ``k``
  disjoint trees.  Node ids, CSR edges and (crucially) *vertex ids* are
  globally shifted so the packed object looks like one giant instance;
  ``node_base`` / ``vertex_base`` offset arrays and a per-node
  ``instance_id`` recover the per-instance view.
* :func:`pack` builds a forest from a list of trees; :func:`unpack` inverts
  it exactly (``unpack(pack(ts))[i] == as_flat_cotree(ts[i])``).
* :class:`BinaryForest` is the binarized counterpart produced by
  :func:`repro.core.binarize.binarize_parallel` when it is fed a forest.

``leaf_vertex`` holds the *globally shifted* vertex ids (instance ``i``'s
vertices live in ``[vertex_base[i], vertex_base[i+1])``) so that pipeline
stages operating on the vertex universe need no per-instance handling;
``leaf_vertex_local`` keeps the original per-instance ids so DP leaf
initialisers see exactly the values a solo run would.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from .binary import BinaryCotree
from .cotree import LEAF
from .flat import FlatCotree, as_flat_cotree

__all__ = ["FlatForest", "BinaryForest", "pack", "unpack"]


class FlatForest(FlatCotree):
    """``k`` disjoint cotrees packed into one CSR struct-of-arrays.

    Additional attributes
    ---------------------
    roots:
        ``int64`` array of length ``k``: the (global) root node id of every
        instance, ``-1`` for an empty instance.
    instance_id:
        per-node instance index (length ``num_nodes``).
    node_base:
        ``int64`` array of length ``k + 1``; instance ``i`` owns nodes
        ``[node_base[i], node_base[i+1])``.
    vertex_base:
        ``int64`` array of length ``k + 1``; instance ``i`` owns (global)
        vertices ``[vertex_base[i], vertex_base[i+1])``.
    leaf_vertex_local:
        the instances' original (un-shifted) leaf vertex ids.

    The inherited ``root`` attribute is the first non-empty instance's root
    (or ``-1`` for an all-empty forest); code that is forest-aware should
    use ``roots`` instead.
    """

    __slots__ = ("roots", "instance_id", "node_base", "vertex_base",
                 "leaf_vertex_local")

    def __init__(self, kind, child_offset, child_index, parent, leaf_vertex,
                 roots, instance_id, node_base, vertex_base,
                 leaf_vertex_local) -> None:
        roots = np.asarray(roots, dtype=np.int64)
        real = roots[roots >= 0]
        super().__init__(kind, child_offset, child_index, parent, leaf_vertex,
                         int(real[0]) if len(real) else -1)
        self.roots = roots
        self.instance_id = np.asarray(instance_id, dtype=np.int64)
        self.node_base = np.asarray(node_base, dtype=np.int64)
        self.vertex_base = np.asarray(vertex_base, dtype=np.int64)
        self.leaf_vertex_local = np.asarray(leaf_vertex_local, dtype=np.int64)

    @property
    def num_instances(self) -> int:
        """Number of packed instances (including empty ones)."""
        return len(self.roots)

    def instance_of_vertex(self, vertices) -> np.ndarray:
        """Instance index owning each (global) vertex id."""
        v = np.asarray(vertices, dtype=np.int64)
        return np.searchsorted(self.vertex_base, v, side="right") - 1

    def copy(self) -> "FlatForest":
        return FlatForest(self.kind.copy(), self.child_offset.copy(),
                          self.child_index.copy(), self.parent.copy(),
                          self.leaf_vertex.copy(), self.roots.copy(),
                          self.instance_id.copy(), self.node_base.copy(),
                          self.vertex_base.copy(),
                          self.leaf_vertex_local.copy())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"FlatForest(num_instances={self.num_instances}, "
                f"num_vertices={self.num_vertices}, "
                f"num_nodes={self.num_nodes})")


@dataclass
class BinaryForest(BinaryCotree):
    """A binarized :class:`FlatForest`: disjoint full binary cotrees.

    ``roots`` lists every instance's root node id; the inherited scalar
    ``root`` is the first of them (kept meaningful so single-root helpers
    keep working on the first tree).  Produced by
    :func:`repro.core.binarize.binarize_parallel` when its input carries a
    ``roots`` array; consumed by the forest-aware pipeline stages.
    """

    roots: np.ndarray = None

    def __post_init__(self) -> None:
        BinaryCotree.__post_init__(self)
        self.roots = np.asarray(self.roots, dtype=np.int64)

    def copy(self) -> "BinaryForest":
        return BinaryForest(self.kind.copy(), self.left.copy(),
                            self.right.copy(), self.parent.copy(),
                            self.leaf_vertex.copy(), self.root,
                            roots=self.roots.copy())


def pack(trees: Sequence) -> FlatForest:
    """Pack a list of cotrees into one :class:`FlatForest`.

    Every input is coerced via :func:`as_flat_cotree`.  Each non-empty
    instance must use the local vertex ids ``0 .. n_i - 1`` (the same
    assumption the solo pipeline makes); a :class:`ValueError` names the
    offending instance otherwise.  Empty instances pack to an empty node
    range with root ``-1``.
    """
    flats = [t if type(t) is FlatCotree else as_flat_cotree(t)
             for t in trees]
    for i, f in enumerate(flats):
        if f.has_primes:
            raise ValueError(f"instance {i}: modular decomposition trees "
                             f"with prime nodes cannot be forest-packed")
    k = len(flats)
    num_nodes = np.fromiter((len(f.kind) for f in flats), np.int64, count=k)
    num_edges = np.fromiter((len(f.child_index) for f in flats),
                            np.int64, count=k)
    node_base = np.zeros(k + 1, dtype=np.int64)
    np.cumsum(num_nodes, out=node_base[1:])
    edge_base = np.zeros(k + 1, dtype=np.int64)
    np.cumsum(num_edges, out=edge_base[1:])

    def cat(arrays, dtype):
        arrays = [a for a in arrays if len(a)]
        if not arrays:
            return np.empty(0, dtype=dtype)
        return np.concatenate(arrays).astype(dtype, copy=False)

    # concatenate every field raw, then shift in ONE vectorized pass per
    # field (per-instance arithmetic would cost k NumPy dispatches each —
    # the very overhead packing exists to amortise)
    kind = cat([f.kind for f in flats], np.int8)
    total_nodes = int(node_base[-1])
    node_shift = np.repeat(node_base[:-1], num_nodes)
    leaf_vertex_local = cat([f.leaf_vertex for f in flats], np.int64)
    leaf_pos = np.flatnonzero(kind == LEAF)
    # leaves per instance, from where node_base lands between leaf positions
    num_verts = np.diff(np.searchsorted(leaf_pos, node_base))
    vertex_base = np.zeros(k + 1, dtype=np.int64)
    np.cumsum(num_verts, out=vertex_base[1:])

    # validate every instance's vertex universe in one sweep: instance i's
    # leaf ids must be a permutation of 0..n_i-1, i.e. in range and, once
    # globally shifted, covering [0, total) exactly once
    lv = leaf_vertex_local[leaf_pos]
    in_range = (lv >= 0) & (lv < np.repeat(num_verts, num_verts))
    shifted = lv + np.repeat(vertex_base[:-1], num_verts)
    counts = np.bincount(shifted[in_range], minlength=int(vertex_base[-1]))
    if not in_range.all() or (counts != 1).any():
        for i, f in enumerate(flats):
            n_i = f.num_vertices
            if n_i and not np.array_equal(f.vertices,
                                          np.arange(n_i, dtype=np.int64)):
                raise ValueError(
                    f"instance {i}: vertex ids must be 0..{n_i - 1} to pack "
                    f"(got {f.vertices.tolist()[:8]}...)")

    raw_roots = np.fromiter((f.root for f in flats), np.int64, count=k)
    roots = np.where(num_nodes > 0, raw_roots + node_base[:-1],
                     np.int64(-1))
    child_index = cat([f.child_index for f in flats], np.int64)
    child_index += np.repeat(node_base[:-1], num_edges)
    child_offset = np.empty(total_nodes + 1, dtype=np.int64)
    child_offset[-1] = edge_base[-1]
    child_offset[:-1] = cat([f.child_offset[:-1] for f in flats], np.int64) \
        + np.repeat(edge_base[:-1], num_nodes)
    raw_parent = cat([f.parent for f in flats], np.int64)
    parent = np.where(raw_parent < 0, np.int64(-1), raw_parent + node_shift)
    leaf_vertex = np.full(total_nodes, -1, dtype=np.int64)
    leaf_vertex[leaf_pos] = shifted
    instance_id = np.repeat(np.arange(k, dtype=np.int64), num_nodes)
    return FlatForest(kind, child_offset, child_index, parent, leaf_vertex,
                      roots, instance_id, node_base, vertex_base,
                      leaf_vertex_local)


def unpack(forest: FlatForest) -> List[FlatCotree]:
    """Invert :func:`pack`: recover each instance as a :class:`FlatCotree`.

    The returned trees compare equal (``==``) to ``as_flat_cotree`` of the
    packed inputs; empty instances come back as empty trees with root
    ``-1``.
    """
    out: List[FlatCotree] = []
    nb = forest.node_base
    co = forest.child_offset
    for i in range(forest.num_instances):
        lo, hi = int(nb[i]), int(nb[i + 1])
        elo, ehi = int(co[lo]), int(co[hi])
        kind = forest.kind[lo:hi].copy()
        offset = (co[lo:hi + 1] - elo).copy()
        index = (forest.child_index[elo:ehi] - lo).copy()
        par = forest.parent[lo:hi]
        parent = np.where(par < 0, np.int64(-1), par - lo)
        leaf_vertex = forest.leaf_vertex_local[lo:hi].copy()
        r = int(forest.roots[i])
        out.append(FlatCotree(kind, offset, index, parent,
                              leaf_vertex, r - lo if r >= 0 else -1))
    return out
