"""A small explicit graph container used by the recognition code, the
validators, the brute-force baseline and the examples.

The algorithms of the paper never materialise the cograph — they work on the
cotree — but a downstream user usually starts from an ordinary graph, and the
test-suite needs an independent notion of adjacency to check the produced
path covers against.  Cographs can have :math:`\\Theta(n^2)` edges, so this
class is meant for inputs up to a few thousand vertices; beyond that use the
LCA oracle in :mod:`repro.cograph.lca`.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Sequence, Set, Tuple

import numpy as np

__all__ = ["Graph"]


class Graph:
    """An undirected simple graph over vertices ``0 .. n-1`` (adjacency sets)."""

    __slots__ = ("n", "adj")

    def __init__(self, n: int, edges: Iterable[Tuple[int, int]] = ()) -> None:
        if n < 0:
            raise ValueError("vertex count must be non-negative")
        self.n = int(n)
        self.adj: List[Set[int]] = [set() for _ in range(self.n)]
        for u, v in edges:
            self.add_edge(u, v)

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #

    @classmethod
    def from_adjacency(cls, adj: Dict[int, Iterable[int]]) -> "Graph":
        """Build from a ``{vertex: neighbours}`` mapping (vertices 0..n-1).

        One-sided listings are accepted: a vertex may appear only as a
        neighbour (``{0: [1, 2]}`` is the 3-vertex star/path ``1-0-2``).
        The neighbour lists are flattened into one edge array and routed
        through :meth:`from_edge_array`, so no per-edge Python loop runs.
        """
        values = [list(nbrs) for nbrs in adj.values()]   # per-vertex, not
        keys = np.fromiter(adj.keys(), dtype=np.int64,   # per-edge work
                           count=len(adj))
        lengths = np.fromiter(map(len, values), dtype=np.int64,
                              count=len(values))
        flat: List[int] = []
        for nbrs in values:
            flat += nbrs
        cols = np.asarray(flat, dtype=np.int64) if flat else \
            np.empty(0, dtype=np.int64)
        rows = np.repeat(keys, lengths)
        n = 0
        if len(keys):
            n = max(n, int(keys.max()) + 1)
        if len(cols):
            n = max(n, int(cols.max()) + 1)
        edges = np.stack([rows, cols], axis=1) if len(rows) else \
            np.empty((0, 2), dtype=np.int64)
        return cls.from_edge_array(n, edges)

    @classmethod
    def from_edge_array(cls, n: int, edges) -> "Graph":
        """Build from an ``(m, 2)`` integer array without per-edge Python.

        Validation (range, self-loops), symmetrisation and deduplication are
        NumPy operations; the adjacency sets are assembled from one C-level
        ``tolist`` with per-vertex slices.
        """
        edges = np.asarray(edges, dtype=np.int64).reshape(-1, 2)
        g = cls(n)
        if len(edges) == 0:
            return g
        if np.any(edges < 0) or np.any(edges >= n):
            u, v = next((int(u), int(v)) for u, v in edges
                        if u < 0 or v < 0 or u >= n or v >= n)
            raise ValueError(f"edge ({u},{v}) out of range for n={n}")
        if np.any(edges[:, 0] == edges[:, 1]):
            raise ValueError("self-loops are not allowed")
        both = np.concatenate([edges, edges[:, ::-1]])
        order = np.lexsort((both[:, 1], both[:, 0]))
        both = both[order]
        counts = np.bincount(both[:, 0], minlength=n)
        bounds = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(counts, out=bounds[1:])
        flat = both[:, 1].tolist()
        b = bounds.tolist()
        g.adj = [set(flat[b[u]:b[u + 1]]) for u in range(n)]
        return g

    @classmethod
    def from_cotree(cls, cotree) -> "Graph":
        """Materialise the cograph represented by a cotree."""
        adj = cotree.adjacency_sets()
        n = cotree.num_vertices
        g = cls(n)
        for u, nbrs in adj.items():
            for v in nbrs:
                if u < v:
                    g.add_edge(u, v)
        return g

    def add_edge(self, u: int, v: int) -> None:
        """Add an undirected edge (self-loops are rejected)."""
        if u == v:
            raise ValueError("self-loops are not allowed")
        if not (0 <= u < self.n and 0 <= v < self.n):
            raise ValueError(f"edge ({u},{v}) out of range for n={self.n}")
        self.adj[u].add(v)
        self.adj[v].add(u)

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #

    def has_edge(self, u: int, v: int) -> bool:
        """True when ``{u, v}`` is an edge."""
        return v in self.adj[u]

    def degree(self, u: int) -> int:
        """Degree of ``u``."""
        return len(self.adj[u])

    def num_edges(self) -> int:
        """Number of edges."""
        return sum(len(a) for a in self.adj) // 2

    def edges(self) -> Iterator[Tuple[int, int]]:
        """Iterate edges as ordered pairs ``(u, v)`` with ``u < v``."""
        for u in range(self.n):
            for v in self.adj[u]:
                if u < v:
                    yield (u, v)

    def neighbours(self, u: int) -> Set[int]:
        """The neighbour set of ``u`` (do not mutate)."""
        return self.adj[u]

    def vertices(self) -> range:
        """The vertex range ``0 .. n-1``."""
        return range(self.n)

    # ------------------------------------------------------------------ #
    # derived graphs
    # ------------------------------------------------------------------ #

    def complement(self) -> "Graph":
        """The complement graph."""
        g = Graph(self.n)
        for u in range(self.n):
            g.adj[u] = set(range(self.n)) - self.adj[u] - {u}
        return g

    def induced_subgraph(self, vertices: Sequence[int]) -> Tuple["Graph", Dict[int, int]]:
        """Induced subgraph on ``vertices``.

        Returns the subgraph (with vertices renumbered ``0..k-1``) and the
        mapping from new ids back to original ids.
        """
        vs = list(vertices)
        index = {v: i for i, v in enumerate(vs)}
        g = Graph(len(vs))
        for v in vs:
            for w in self.adj[v]:
                if w in index and v < w:
                    g.add_edge(index[v], index[w])
        back = {i: v for v, i in index.items()}
        return g, back

    # ------------------------------------------------------------------ #
    # connectivity
    # ------------------------------------------------------------------ #

    def connected_components(self) -> List[List[int]]:
        """Connected components as vertex lists."""
        seen = [False] * self.n
        comps: List[List[int]] = []
        for s in range(self.n):
            if seen[s]:
                continue
            comp = [s]
            seen[s] = True
            stack = [s]
            while stack:
                u = stack.pop()
                for v in self.adj[u]:
                    if not seen[v]:
                        seen[v] = True
                        comp.append(v)
                        stack.append(v)
            comps.append(comp)
        return comps

    def complement_components(self) -> List[List[int]]:
        """Connected components of the *complement*, computed without
        materialising it.

        Uses the classic "remaining set" BFS: when exploring vertex ``u`` in
        the complement, its unvisited complement-neighbours are exactly the
        unvisited vertices that are *not* graph-neighbours of ``u``.
        """
        remaining: Set[int] = set(range(self.n))
        comps: List[List[int]] = []
        while remaining:
            s = next(iter(remaining))
            remaining.discard(s)
            comp = [s]
            queue = [s]
            while queue:
                u = queue.pop()
                nbrs = self.adj[u]
                reachable = [w for w in remaining if w not in nbrs]
                for w in reachable:
                    remaining.discard(w)
                    comp.append(w)
                    queue.append(w)
            comps.append(comp)
        return comps

    def is_connected(self) -> bool:
        """True for the empty graph and any connected graph."""
        if self.n <= 1:
            return True
        return len(self.connected_components()) == 1

    # ------------------------------------------------------------------ #
    # misc
    # ------------------------------------------------------------------ #

    def copy(self) -> "Graph":
        """Deep copy."""
        g = Graph(self.n)
        g.adj = [set(a) for a in self.adj]
        return g

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Graph):
            return NotImplemented
        return self.n == other.n and self.adj == other.adj

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Graph(n={self.n}, m={self.num_edges()})"
