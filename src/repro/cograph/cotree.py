"""General (multi-way) cotree representation of a cograph.

A *cograph* (complement-reducible graph) is built from single vertices by
disjoint union and join.  Every cograph ``G`` admits a canonical rooted tree
representation, the *cotree* ``T(G)`` (Corneil, Lerchs, Stewart Burlingham
1981), with the properties used throughout the paper:

(4) every internal node has at least two children;
(5) internal nodes are labelled 0 (union) or 1 (join) and labels alternate on
    every root-to-leaf path;
(6) leaves are the vertices of ``G`` and two vertices are adjacent iff their
    lowest common ancestor is a 1-node.

This module provides :class:`Cotree`, an arbitrary-arity rooted cotree with a
structure-of-arrays backing store, plus construction, canonicalisation,
traversal and conversion helpers.  The binarized form used by the algorithms
lives in :mod:`repro.cograph.binary`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

__all__ = [
    "LEAF",
    "UNION",
    "JOIN",
    "PRIME",
    "Cotree",
    "CotreeError",
    "kind_name",
]

#: Node-kind code for a leaf (a vertex of the cograph).
LEAF: int = 0
#: Node-kind code for a 0-node (disjoint union of its children).
UNION: int = 1
#: Node-kind code for a 1-node (join of its children).
JOIN: int = 2
#: Node-kind code for a prime node of a *modular decomposition* tree: the
#: children are the node's maximal strong modules and a packed quotient
#: graph over them (carried by :class:`~repro.cograph.FlatCotree` CSR
#: side-arrays) records which child pairs are joined.  Cotrees never
#: contain this kind — it only appears in trees built by
#: :func:`~repro.cograph.md_tree`.
PRIME: int = 3

_KIND_NAMES = {LEAF: "leaf", UNION: "0", JOIN: "1", PRIME: "prime"}


def kind_name(kind: int) -> str:
    """Return a human-readable name ("leaf", "0" or "1") for a node kind."""
    return _KIND_NAMES[int(kind)]


class CotreeError(ValueError):
    """Raised when a structure is not a valid cotree."""


# A nested specification of a cotree:  either an ``int`` (a leaf holding that
# vertex id), the string "v<k>" form is not supported -- just ints -- or a
# tuple ``(op, child, child, ...)`` where ``op`` is "union"/"0" or "join"/"1".
NestedSpec = Union[int, Tuple]

_OP_CODES = {
    "union": UNION,
    "0": UNION,
    0: UNION,
    "join": JOIN,
    "1": JOIN,
    1: JOIN,
}


@dataclass
class _NodeRecord:
    """Mutable node record used while building a :class:`Cotree`."""

    kind: int
    children: List[int] = field(default_factory=list)
    vertex: int = -1


class Cotree:
    """An arbitrary-arity rooted cotree.

    Nodes are integers ``0 .. num_nodes - 1``.  Leaves carry a *vertex id* in
    ``0 .. num_vertices - 1``; the mapping between vertex ids and leaf nodes
    is explicit so vertices keep their identity through binarisation,
    reduction and path construction.

    Instances are immutable once constructed; all mutating helpers return new
    trees.

    Parameters
    ----------
    kind:
        integer array of node kinds (:data:`LEAF`, :data:`UNION`,
        :data:`JOIN`).
    children:
        list of child-id lists, one per node (empty for leaves).
    leaf_vertex:
        integer array mapping node id -> vertex id (``-1`` for internal
        nodes).
    root:
        id of the root node.
    """

    __slots__ = ("kind", "children", "leaf_vertex", "parent", "root",
                 "_vertex_to_leaf")

    def __init__(
        self,
        kind: Sequence[int],
        children: Sequence[Sequence[int]],
        leaf_vertex: Sequence[int],
        root: int,
        *,
        validate: bool = True,
    ) -> None:
        self.kind = np.asarray(kind, dtype=np.int8)
        self.children: List[List[int]] = [list(c) for c in children]
        self.leaf_vertex = np.asarray(leaf_vertex, dtype=np.int64)
        self.root = int(root)
        n = len(self.kind)
        if not (len(self.children) == n == len(self.leaf_vertex)):
            raise CotreeError("kind, children and leaf_vertex must have the "
                              "same length")
        if n == 0:
            # the cotree of the empty cograph: no nodes, root -1 (round-trips
            # through FlatCotree and canonical_key must not raise)
            if self.root != -1:
                raise CotreeError("an empty cotree must have root -1")
            self.parent = np.empty(0, dtype=np.int64)
            self._vertex_to_leaf = {}
            return
        parent = np.full(n, -1, dtype=np.int64)
        for u, cs in enumerate(self.children):
            for c in cs:
                if parent[c] != -1:
                    raise CotreeError(f"node {c} has two parents")
                parent[c] = u
        self.parent = parent
        # vertex id -> leaf node id
        leaves = np.flatnonzero(self.kind == LEAF)
        vmap = {}
        for leaf in leaves:
            v = int(self.leaf_vertex[leaf])
            if v < 0:
                raise CotreeError(f"leaf node {leaf} has no vertex id")
            if v in vmap:
                raise CotreeError(f"vertex {v} appears on two leaves")
            vmap[v] = int(leaf)
        self._vertex_to_leaf = vmap
        if validate:
            self._validate_basic()

    # ------------------------------------------------------------------ #
    # construction helpers
    # ------------------------------------------------------------------ #

    @classmethod
    def single_vertex(cls, vertex: int = 0) -> "Cotree":
        """The cotree of the one-vertex cograph."""
        return cls([LEAF], [[]], [vertex], 0)

    @classmethod
    def from_nested(cls, spec: NestedSpec) -> "Cotree":
        """Build a cotree from a nested tuple specification.

        ``spec`` is either an ``int`` (a leaf whose vertex id is that
        integer) or a tuple ``(op, child_spec, child_spec, ...)`` with ``op``
        one of ``"union"``, ``"0"``, ``0`` (union node) or ``"join"``,
        ``"1"``, ``1`` (join node).

        Examples
        --------
        >>> t = Cotree.from_nested(("join", 0, ("union", 1, 2)))
        >>> t.num_vertices
        3
        """
        records: List[_NodeRecord] = []

        def new_record(s: NestedSpec) -> int:
            """Create the record for one spec element (children added later)."""
            if isinstance(s, (int, np.integer)):
                records.append(_NodeRecord(LEAF, [], int(s)))
            else:
                if not isinstance(s, tuple) or len(s) < 2:
                    raise CotreeError(f"bad nested spec element: {s!r}")
                op = s[0]
                if op not in _OP_CODES:
                    raise CotreeError(f"unknown cotree operation {op!r}")
                records.append(_NodeRecord(_OP_CODES[op]))
            return len(records) - 1

        # Iterative construction (deep caterpillar specs would overflow the
        # Python recursion limit otherwise).
        root = new_record(spec)
        stack: List[Tuple[int, NestedSpec]] = [(root, spec)]
        while stack:
            idx, s = stack.pop()
            if isinstance(s, (int, np.integer)):
                continue
            for child_spec in s[1:]:
                child_idx = new_record(child_spec)
                records[idx].children.append(child_idx)
                stack.append((child_idx, child_spec))
        return cls(
            [r.kind for r in records],
            [r.children for r in records],
            [r.vertex for r in records],
            root,
        )

    @classmethod
    def from_parent_pointers(
        cls,
        parent: Sequence[int],
        kind: Sequence[int],
        leaf_vertex: Optional[Sequence[int]] = None,
    ) -> "Cotree":
        """Build a cotree from the parent-pointer representation.

        This is the representation used in the paper's lower-bound
        construction ("It is trivial to construct the cotree using the
        well-known parent-pointer representation").

        Parameters
        ----------
        parent:
            ``parent[u]`` is the parent node of ``u``; the root has parent
            ``-1``.
        kind:
            node kinds.
        leaf_vertex:
            optional vertex ids for the leaves; defaults to numbering the
            leaves ``0, 1, ...`` in node-id order.
        """
        parent = np.asarray(parent, dtype=np.int64)
        kind = np.asarray(kind, dtype=np.int8)
        n = len(parent)
        children: List[List[int]] = [[] for _ in range(n)]
        root = -1
        for u in range(n):
            p = int(parent[u])
            if p == -1:
                if root != -1:
                    raise CotreeError("multiple roots in parent-pointer form")
                root = u
            else:
                children[p].append(u)
        if root == -1:
            raise CotreeError("no root in parent-pointer form")
        if leaf_vertex is None:
            leaf_vertex = np.full(n, -1, dtype=np.int64)
            leaves = [u for u in range(n) if kind[u] == LEAF]
            for i, u in enumerate(leaves):
                leaf_vertex[u] = i
        return cls(kind, children, leaf_vertex, root)

    # ------------------------------------------------------------------ #
    # basic properties
    # ------------------------------------------------------------------ #

    @property
    def num_nodes(self) -> int:
        """Total number of cotree nodes (leaves plus internal nodes)."""
        return len(self.kind)

    @property
    def num_vertices(self) -> int:
        """Number of cograph vertices, i.e. number of leaves."""
        return int(np.count_nonzero(self.kind == LEAF))

    @property
    def internal_nodes(self) -> np.ndarray:
        """Array of internal node ids."""
        return np.flatnonzero(self.kind != LEAF)

    @property
    def leaves(self) -> np.ndarray:
        """Array of leaf node ids."""
        return np.flatnonzero(self.kind == LEAF)

    @property
    def vertices(self) -> np.ndarray:
        """Sorted array of vertex ids."""
        return np.sort(self.leaf_vertex[self.kind == LEAF])

    def leaf_of_vertex(self, vertex: int) -> int:
        """Return the leaf node holding ``vertex``."""
        return self._vertex_to_leaf[int(vertex)]

    def is_leaf(self, node: int) -> bool:
        """True when ``node`` is a leaf."""
        return self.kind[node] == LEAF

    def degree(self, node: int) -> int:
        """Number of children of ``node``."""
        return len(self.children[node])

    # ------------------------------------------------------------------ #
    # traversal
    # ------------------------------------------------------------------ #

    def preorder(self) -> Iterator[int]:
        """Iterate node ids in preorder (iterative, recursion-free)."""
        stack = [self.root] if self.num_nodes else []
        while stack:
            u = stack.pop()
            yield u
            stack.extend(reversed(self.children[u]))

    def postorder(self) -> Iterator[int]:
        """Iterate node ids in postorder (children before parents)."""
        order: List[int] = []
        stack = [self.root] if self.num_nodes else []
        while stack:
            u = stack.pop()
            order.append(u)
            stack.extend(self.children[u])
        return reversed(order)

    def depth(self) -> np.ndarray:
        """Depth of each node (root depth 0)."""
        d = np.zeros(self.num_nodes, dtype=np.int64)
        for u in self.preorder():
            for c in self.children[u]:
                d[c] = d[u] + 1
        return d

    def height(self) -> int:
        """Height of the tree (number of edges on the longest root path)."""
        if self.num_nodes <= 1:
            return 0
        return int(self.depth().max())

    def subtree_leaf_counts(self) -> np.ndarray:
        """``L(u)``: number of leaf descendants of every node."""
        counts = np.zeros(self.num_nodes, dtype=np.int64)
        for u in self.postorder():
            if self.kind[u] == LEAF:
                counts[u] = 1
            else:
                counts[u] = sum(counts[c] for c in self.children[u])
        return counts

    def leaf_descendants(self, node: int) -> List[int]:
        """Vertex ids of the leaf descendants of ``node`` (left-to-right)."""
        out: List[int] = []
        stack = [node]
        while stack:
            u = stack.pop()
            if self.kind[u] == LEAF:
                out.append(int(self.leaf_vertex[u]))
            else:
                stack.extend(reversed(self.children[u]))
        return out

    # ------------------------------------------------------------------ #
    # validation / canonical form
    # ------------------------------------------------------------------ #

    def _validate_basic(self) -> None:
        """Check tree-ness and leaf/internal consistency."""
        n = self.num_nodes
        seen = np.zeros(n, dtype=bool)
        count = 0
        for u in self.preorder():
            if seen[u]:
                raise CotreeError("cycle or shared node in cotree")
            seen[u] = True
            count += 1
        if count != n:
            raise CotreeError("cotree has unreachable nodes")
        for u in range(n):
            if self.kind[u] == LEAF:
                if self.children[u]:
                    raise CotreeError(f"leaf node {u} has children")
            else:
                if len(self.children[u]) == 0:
                    raise CotreeError(f"internal node {u} has no children")

    def is_canonical(self) -> bool:
        """True when the cotree satisfies properties (4) and (5).

        Property (4): every internal node has at least two children.
        Property (5): labels alternate along every root-to-leaf path, i.e. no
        internal node has a child with the same label.  (Vectorized: child
        counts via one bincount, label alternation via the parent array.)
        """
        internal = self.internal_nodes
        if internal.size == 0:
            return True
        has_parent = self.parent != -1
        deg = np.bincount(self.parent[has_parent], minlength=self.num_nodes)
        if np.any(deg[internal] < 2):
            return False
        child = np.flatnonzero(has_parent & (self.kind != LEAF))
        return not bool(np.any(self.kind[child] ==
                               self.kind[self.parent[child]]))

    def canonicalize(self) -> "Cotree":
        """Return an equivalent canonical cotree.

        Unary internal nodes are spliced out and children with the same label
        as their parent are merged into the parent, which restores properties
        (4) and (5) without changing the represented cograph.
        """
        # Work on a mutable copy of the children lists, bottom-up.
        kind = self.kind.copy()
        children = [list(c) for c in self.children]
        # splice unary chains and merge same-label children until fixpoint
        changed = True
        while changed:
            changed = False
            for u in list(self.postorder()):
                if kind[u] == LEAF:
                    continue
                # merge children that are internal and same-labelled
                new_children: List[int] = []
                for c in children[u]:
                    if kind[c] != LEAF and len(children[c]) == 1:
                        # unary internal node: splice out
                        new_children.append(children[c][0])
                        children[c] = []
                        changed = True
                    elif kind[c] != LEAF and kind[c] == kind[u]:
                        new_children.extend(children[c])
                        children[c] = []
                        changed = True
                    else:
                        new_children.append(c)
                children[u] = new_children
        root = self.root
        while kind[root] != LEAF and len(children[root]) == 1:
            root = children[root][0]
        # compact reachable nodes
        return _compact(kind, children, self.leaf_vertex, root)

    # ------------------------------------------------------------------ #
    # graph semantics
    # ------------------------------------------------------------------ #

    def adjacency_sets(self) -> dict:
        """Materialise the cograph as ``{vertex: set(neighbours)}``.

        This is quadratic in the worst case (a join has Θ(n²) edges); use the
        LCA-based oracle in :mod:`repro.cograph.lca` for large graphs.
        """
        adj: dict = {int(v): set() for v in self.vertices}
        # compute bottom-up: each internal node knows the vertex sets of its
        # children; a JOIN node adds the complete bipartite edges between
        # every pair of distinct children.
        vsets: dict = {}
        for u in self.postorder():
            if self.kind[u] == LEAF:
                vsets[u] = [int(self.leaf_vertex[u])]
            else:
                child_sets = [vsets[c] for c in self.children[u]]
                if self.kind[u] == JOIN:
                    for i in range(len(child_sets)):
                        for j in range(i + 1, len(child_sets)):
                            for a in child_sets[i]:
                                for b in child_sets[j]:
                                    adj[a].add(b)
                                    adj[b].add(a)
                merged: List[int] = []
                for s in child_sets:
                    merged.extend(s)
                vsets[u] = merged
        return adj

    def edge_count(self) -> int:
        """Number of edges of the represented cograph (without materialising)."""
        counts = self.subtree_leaf_counts()
        m = 0
        for u in self.internal_nodes:
            if self.kind[u] == JOIN:
                cs = [counts[c] for c in self.children[u]]
                total = sum(cs)
                # sum over unordered pairs of children of |Vi|*|Vj|
                m += (total * total - sum(c * c for c in cs)) // 2
        return int(m)

    # ------------------------------------------------------------------ #
    # dunder / misc
    # ------------------------------------------------------------------ #

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"Cotree(num_vertices={self.num_vertices}, "
                f"num_nodes={self.num_nodes}, root_kind="
                f"{kind_name(self.kind[self.root])!r})")

    def to_nested(self) -> NestedSpec:
        """Inverse of :meth:`from_nested` (up to child ordering)."""
        def rec(u: int) -> NestedSpec:
            if self.kind[u] == LEAF:
                return int(self.leaf_vertex[u])
            op = "union" if self.kind[u] == UNION else "join"
            return tuple([op] + [rec(c) for c in self.children[u]])
        return rec(self.root)

    def to_flat(self):
        """This tree in :class:`~repro.cograph.flat.FlatCotree` (CSR) form."""
        from .flat import FlatCotree
        return FlatCotree.from_cotree(self)

    def relabel_vertices(self, mapping: dict) -> "Cotree":
        """Return a copy with vertex ids replaced according to ``mapping``."""
        lv = self.leaf_vertex.copy()
        for node in self.leaves:
            lv[node] = mapping[int(self.leaf_vertex[node])]
        return Cotree(self.kind, self.children, lv, self.root)

    def __eq__(self, other: object) -> bool:
        """Structural equality of the rooted, ordered trees."""
        if not isinstance(other, Cotree):
            return NotImplemented
        return self.to_nested() == other.to_nested()

    def __hash__(self) -> int:
        return hash(self.to_nested())


def _compact(kind, children, leaf_vertex, root) -> Cotree:
    """Re-index the nodes reachable from ``root`` into a fresh Cotree."""
    order: List[int] = []
    stack = [root]
    while stack:
        u = stack.pop()
        order.append(u)
        stack.extend(reversed(children[u]))
    remap = {old: new for new, old in enumerate(order)}
    new_kind = [int(kind[u]) for u in order]
    new_children = [[remap[c] for c in children[u]] for u in order]
    new_leaf_vertex = [int(leaf_vertex[u]) for u in order]
    return Cotree(new_kind, new_children, new_leaf_vertex, remap[root])
