"""Cograph substrate: cotrees, cographs, generators, recognition, validation.

This package is the graph-theoretic foundation the paper assumes as given:
the cotree representation (properties (4)-(6)), the cograph algebra (union,
join, complement), recognition from a plain graph, adjacency oracles, and the
:class:`PathCover` result type with its validators.
"""

from .binary import BinaryCotree, binarize_cotree
from .cotree import JOIN, LEAF, PRIME, UNION, Cotree, CotreeError, kind_name
from .flat import FlatCotree, as_flat_cotree, canonical_key
from .forest import BinaryForest, FlatForest, pack, unpack
from .generators import (
    balanced_cotree,
    caterpillar_cotree,
    clique,
    complete_bipartite,
    independent_set,
    join_of_independent_sets,
    random_cograph_edges,
    random_cotree,
    random_p4_sparse,
    single_vertex,
    threshold_cograph,
    union_of_cliques,
)
from .graph import Graph
from .lca import CographAdjacencyOracle
from .md import graph_from_md_tree, md_tree
from .operations import (
    complement_cotree,
    join_cotrees,
    relabel_disjoint,
    union_cotrees,
)
from .path_cover import PathCover, PathCoverError
from .recognition import NotACographError, cotree_from_graph, find_induced_p4, is_cograph
from .validation import (
    make_leftist,
    minimum_path_cover_size,
    path_cover_sizes_per_node,
    validate_binary_cotree,
    validate_cotree,
)

__all__ = [
    "LEAF", "UNION", "JOIN", "PRIME", "kind_name",
    "Cotree", "CotreeError", "BinaryCotree", "binarize_cotree",
    "FlatCotree", "as_flat_cotree", "canonical_key",
    "FlatForest", "BinaryForest", "pack", "unpack",
    "Graph", "CographAdjacencyOracle",
    "md_tree", "graph_from_md_tree",
    "PathCover", "PathCoverError",
    "single_vertex", "independent_set", "clique", "complete_bipartite",
    "union_of_cliques", "join_of_independent_sets", "balanced_cotree",
    "caterpillar_cotree", "threshold_cograph", "random_cotree",
    "random_cograph_edges", "random_p4_sparse",
    "union_cotrees", "join_cotrees", "complement_cotree", "relabel_disjoint",
    "cotree_from_graph", "is_cograph", "find_induced_p4", "NotACographError",
    "validate_cotree", "validate_binary_cotree", "make_leftist",
    "minimum_path_cover_size", "path_cover_sizes_per_node",
]
