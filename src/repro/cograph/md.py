"""Modular decomposition: the cotree generalized to arbitrary graphs.

The paper's world is cographs, whose modular decomposition tree *is* the
cotree — every internal node is a union (parallel) or join (series) node.
General graphs add one more kind: **prime** nodes, whose children are the
maximal proper strong modules and whose quotient graph (one vertex per
child) is prime, i.e. has no non-trivial module (Gallai 1967).  This module
produces that tree in the same :class:`~repro.cograph.flat.FlatCotree` CSR
form the whole stack already runs on, with the quotient edges packed into
CSR side-arrays (``q_offset`` / ``q_edge_u`` / ``q_edge_v``) whose endpoints
are *local child slots*, so the payload survives renumbering and forest
packing.

Two decomposition paths:

* **cograph fast path** — :func:`md_tree` first runs the existing
  linear-ish :func:`~repro.cograph.recognition.cotree_from_graph`; when it
  succeeds the result is the bit-identical cotree the rest of the stack has
  always produced (the no-prime special case costs nothing new).
* **general path** — on :class:`~repro.cograph.recognition.NotACographError`
  a recursive decomposition takes over: disconnected → union node over the
  components, co-disconnected → join node over the co-components, otherwise
  a prime node.  Prime children are found by a **spider** fast path (the
  quotients of P4-sparse graphs — Jamison & Olariu 1992 — recognised in
  ``O(n + m)`` per node from the degree sequence) with a Gallai fallback
  (union-find over vectorized module closures) that is quadratic-ish but
  exact on arbitrary graphs.

Spider-flagged primes store their children in the fixed layout
``[s_1..s_k, k_1..k_k, (r)]`` (feet, matched body vertices, optional head)
so the DP engine's closed-form spider combine needs no edge scan.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from .._dfs import depth_by_doubling as _depth_by_doubling
from .cotree import JOIN, LEAF, PRIME, UNION
from .flat import FlatCotree, as_flat_cotree
from .graph import Graph
from .recognition import NotACographError, cotree_from_graph

__all__ = [
    "md_tree",
    "graph_from_md_tree",
    "SPIDER_NONE",
    "SPIDER_THIN",
    "SPIDER_THICK",
]

#: ``spider`` flag values on :class:`FlatCotree` prime nodes.
SPIDER_NONE: int = 0
SPIDER_THIN: int = 1
SPIDER_THICK: int = 2


# --------------------------------------------------------------------------- #
# public entry points
# --------------------------------------------------------------------------- #

def md_tree(graph: Graph) -> FlatCotree:
    """Modular decomposition tree of ``graph`` as a :class:`FlatCotree`.

    Cograph inputs return the **bit-identical** flat cotree that
    ``as_flat_cotree(cotree_from_graph(graph))`` has always produced (no
    prime nodes, no payload).  Non-cograph inputs get a tree with at least
    one :data:`~repro.cograph.cotree.PRIME` node carrying its quotient
    edges; spider quotients (the P4-sparse case) are flagged and laid out
    for the closed-form DP combine.
    """
    try:
        return as_flat_cotree(cotree_from_graph(graph))
    except NotACographError:
        pass
    builder = _Builder()
    root = builder.decompose(graph, list(range(graph.n)))
    return builder.finish(root)


def graph_from_md_tree(tree) -> Graph:
    """Materialise the graph a modular decomposition tree represents.

    Inverse of :func:`md_tree` up to isomorphism of the decomposition: two
    leaves are adjacent iff their lowest common ancestor is a join node, or
    a prime node whose quotient joins the two child slots they sit under.
    Accepts plain cotrees too (where it matches ``Graph.from_cotree``).
    """
    flat = as_flat_cotree(tree)
    nn = flat.num_nodes
    if nn == 0:
        return Graph(0)
    leaves = flat.leaves
    n = int(flat.leaf_vertex[leaves].max()) + 1 if len(leaves) else 0
    depth = _depth_by_doubling(flat.parent)
    order = np.argsort(depth, kind="stable")[::-1]          # deepest first
    leafset: List[Optional[np.ndarray]] = [None] * nn
    eu: List[np.ndarray] = []
    ev: List[np.ndarray] = []
    for u in order:
        u = int(u)
        if flat.kind[u] == LEAF:
            leafset[u] = flat.leaf_vertex[u:u + 1]
            continue
        kids = flat.children_of(u)
        sets = [leafset[int(c)] for c in kids]
        leafset[u] = np.concatenate(sets) if sets else \
            np.empty(0, dtype=np.int64)
        if flat.kind[u] == JOIN:
            pairs: Sequence[Tuple[int, int]] = [
                (i, j) for i in range(len(kids))
                for j in range(i + 1, len(kids))]
        elif flat.kind[u] == PRIME:
            qu, qv = flat.quotient_of(u)
            pairs = list(zip(qu.tolist(), qv.tolist()))
        else:
            pairs = []
        for i, j in pairs:
            a, b = sets[i], sets[j]
            eu.append(np.repeat(a, len(b)))
            ev.append(np.tile(b, len(a)))
    if not eu:
        return Graph(n)
    edges = np.stack([np.concatenate(eu), np.concatenate(ev)], axis=1)
    return Graph.from_edge_array(n, edges)


# --------------------------------------------------------------------------- #
# recursive decomposition
# --------------------------------------------------------------------------- #

class _Builder:
    """Accumulates nodes (postorder ids) and packs them into a FlatCotree."""

    def __init__(self) -> None:
        self.kind: List[int] = []
        self.children: List[List[int]] = []
        self.leaf_vertex: List[int] = []
        self.q_edges: List[List[Tuple[int, int]]] = []
        self.spider: List[int] = []

    def leaf(self, vertex: int) -> int:
        self.kind.append(LEAF)
        self.children.append([])
        self.leaf_vertex.append(vertex)
        self.q_edges.append([])
        self.spider.append(SPIDER_NONE)
        return len(self.kind) - 1

    def internal(self, kind: int, kids: List[int],
                 q_edges: Sequence[Tuple[int, int]] = (),
                 spider: int = SPIDER_NONE) -> int:
        self.kind.append(kind)
        self.children.append(kids)
        self.leaf_vertex.append(-1)
        self.q_edges.append(list(q_edges))
        self.spider.append(spider)
        return len(self.kind) - 1

    def decompose(self, g: Graph, ids: List[int]) -> int:
        """MD of induced subgraph ``g``; ``ids[v]`` is the original vertex
        id of local vertex ``v``.  Returns the subtree's root node id."""
        if g.n == 1:
            return self.leaf(ids[0])

        comps = g.connected_components()
        if len(comps) > 1:
            return self.internal(
                UNION, [self._recurse(g, ids, comp) for comp in comps])

        cocomps = g.complement_components()
        if len(cocomps) > 1:
            return self.internal(
                JOIN, [self._recurse(g, ids, comp) for comp in cocomps])

        # g and its complement are connected: prime node.
        hit = _spider_partition(g)
        if hit is not None:
            pairs, rest, thin = hit
            pairs = sorted(pairs, key=lambda p: ids[p[0]])  # deterministic
            kids = [self.leaf(ids[s]) for s, _ in pairs]
            kids += [self.leaf(ids[k]) for _, k in pairs]
            if rest:
                kids.append(self._recurse(g, ids, rest))
            edges = _spider_quotient_edges(len(pairs), bool(rest), thin)
            return self.internal(PRIME, kids, edges,
                                 SPIDER_THIN if thin else SPIDER_THICK)

        parts = _gallai_partition(g)
        parts.sort(key=lambda p: min(ids[v] for v in p))
        kids = [self.leaf(ids[p[0]]) if len(p) == 1
                else self._recurse(g, ids, p) for p in parts]
        reps = [p[0] for p in parts]
        edges = [(i, j) for i in range(len(reps))
                 for j in range(i + 1, len(reps))
                 if g.has_edge(reps[i], reps[j])]
        return self.internal(PRIME, kids, edges, SPIDER_NONE)

    def _recurse(self, g: Graph, ids: List[int],
                 vertices: Sequence[int]) -> int:
        vs = sorted(vertices)
        sub, back = g.induced_subgraph(vs)
        return self.decompose(sub, [ids[back[i]] for i in range(sub.n)])

    def finish(self, root: int) -> FlatCotree:
        n = len(self.kind)
        parent = np.full(n, -1, dtype=np.int64)
        counts = np.fromiter(map(len, self.children), dtype=np.int64,
                             count=n)
        child_offset = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(counts, out=child_offset[1:])
        flat_children: List[int] = []
        for u, cs in enumerate(self.children):
            flat_children += cs
            for c in cs:
                parent[c] = u
        child_index = np.asarray(flat_children, dtype=np.int64) if \
            flat_children else np.empty(0, dtype=np.int64)
        q_counts = np.fromiter(map(len, self.q_edges), dtype=np.int64,
                               count=n)
        q_offset = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(q_counts, out=q_offset[1:])
        flat_q: List[Tuple[int, int]] = []
        for es in self.q_edges:
            flat_q += es
        if flat_q:
            qarr = np.asarray(flat_q, dtype=np.int64)
            q_edge_u, q_edge_v = qarr[:, 0].copy(), qarr[:, 1].copy()
        else:
            q_edge_u = q_edge_v = np.empty(0, dtype=np.int64)
        return FlatCotree(
            np.asarray(self.kind, dtype=np.int8), child_offset, child_index,
            parent, np.asarray(self.leaf_vertex, dtype=np.int64), root,
            q_offset=q_offset, q_edge_u=q_edge_u, q_edge_v=q_edge_v,
            spider=np.asarray(self.spider, dtype=np.int8))


# --------------------------------------------------------------------------- #
# prime-node partitions
# --------------------------------------------------------------------------- #

def _spider_quotient_edges(k: int, has_head: bool,
                           thin: bool) -> List[Tuple[int, int]]:
    """Explicit quotient edges of a spider in the ``[s_*, k_*, (r)]``
    child-slot layout (so generic consumers need no spider special case)."""
    edges: List[Tuple[int, int]] = []
    for i in range(k):                       # body clique
        for j in range(i + 1, k):
            edges.append((k + i, k + j))
    for i in range(k):                       # feet attachment
        if thin:
            edges.append((i, k + i))
        else:
            for j in range(k):
                if j != i:
                    edges.append((i, k + j))
    if has_head:                             # head sees the whole body
        for i in range(k):
            edges.append((k + i, 2 * k))
    return edges


def _spider_partition(
        g: Graph) -> Optional[Tuple[List[Tuple[int, int]], List[int], bool]]:
    """Detect a spider partition ``(S, K, R)`` of connected, co-connected
    ``g``: ``K`` a clique, ``S`` a stable set, ``|S| = |K| = k >= 2``,
    ``K`` complete to ``R``, ``S`` anticomplete to ``R``, and the feet
    matched to the body (thin: ``s_i ~ k_i`` only; thick: ``s_i ~ K \\
    {k_i}``).  Every axiom is verified, so a hit proves the maximal strong
    modules are exactly ``{s_i}``, ``{k_i}`` and ``R`` and the quotient is
    a prime spider.  Returns ``(pairs, R, thin)`` with ``pairs[i] = (s_i,
    k_i)`` or ``None``.
    """
    thin = _thin_spider(g)
    if thin is not None:
        return thin
    return _thick_spider(g)


def _thin_spider(
        g: Graph) -> Optional[Tuple[List[Tuple[int, int]], List[int], bool]]:
    S = [v for v in range(g.n) if g.degree(v) == 1]
    k = len(S)
    if k < 2:
        return None
    sset = set(S)
    body = [next(iter(g.adj[s])) for s in S]
    kset = set(body)
    if len(kset) != k or kset & sset:
        return None
    rest = [v for v in range(g.n) if v not in kset and v not in sset]
    rset = set(rest)
    for s, kv in zip(S, body):
        if g.adj[kv] != (kset - {kv}) | rset | {s}:
            return None
    return list(zip(S, body)), rest, True


def _thick_spider(
        g: Graph) -> Optional[Tuple[List[Tuple[int, int]], List[int], bool]]:
    dmin = min(g.degree(v) for v in range(g.n))
    k = dmin + 1
    if k < 3:
        return None
    S = [v for v in range(g.n) if g.degree(v) == dmin]
    if len(S) != k:
        return None
    sset = set(S)
    kset: set = set()
    for s in S:
        kset |= g.adj[s]
    if len(kset) != k or kset & sset:
        return None
    rest = [v for v in range(g.n) if v not in kset and v not in sset]
    rset = set(rest)
    pairs: List[Tuple[int, int]] = []
    used: set = set()
    for s in S:
        missing = kset - g.adj[s]
        if len(missing) != 1:
            return None
        kv = missing.pop()
        if kv in used:
            return None
        used.add(kv)
        pairs.append((s, kv))
    for s, kv in pairs:
        if g.adj[kv] != (kset - {kv}) | (sset - {s}) | rset:
            return None
    return pairs, rest, False


def _gallai_partition(g: Graph) -> List[List[int]]:
    """Maximal proper modules of connected, co-connected ``g`` (they
    partition the vertices and the quotient is prime — Gallai).

    Union-find over pairwise module closures: ``closure({u, v})`` grows by
    adding every splitter (a vertex adjacent to some but not all current
    members) until none remain; when the closure is proper, all its members
    share a maximal module.  Transitivity holds exactly because ``g`` and
    its complement are connected (overlapping proper modules live inside
    one maximal module), so union-find classes are the partition.
    """
    n = g.n
    adj = np.zeros((n, n), dtype=bool)
    for u in range(n):
        for v in g.adj[u]:
            adj[u, v] = True

    parent = list(range(n))

    def find(x: int) -> int:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    for u in range(n):
        for v in range(u + 1, n):
            if find(u) == find(v):
                continue
            members = _module_closure(adj, u, v)
            if members is None:
                continue
            ru = find(int(members[0]))
            for w in members[1:]:
                rw = find(int(w))
                if rw != ru:
                    parent[rw] = ru
    groups: dict = {}
    for v in range(n):
        groups.setdefault(find(v), []).append(v)
    return [sorted(vs) for vs in groups.values()]


def _module_closure(adj: np.ndarray, u: int,
                    v: int) -> Optional[np.ndarray]:
    """Smallest module containing ``{u, v}``; ``None`` when it is all of
    ``V``.  Each round adds *all* current splitters at once (vectorized
    against the boolean adjacency matrix), so at most ``n`` rounds run."""
    n = len(adj)
    member = np.zeros(n, dtype=bool)
    member[u] = member[v] = True
    size = 2
    while True:
        cnt = adj[:, member].sum(axis=1)
        split = ~member & (cnt > 0) & (cnt < size)
        if not split.any():
            return np.flatnonzero(member)
        member |= split
        size = int(member.sum())
        if size == n:
            return None
