"""Lowest-common-ancestor based adjacency oracle for cographs.

Property (6) of the cotree: two vertices are adjacent in the cograph iff the
lowest common ancestor of their leaves is a 1-node.  This module provides an
oracle that answers adjacency queries in ``O(log n)`` time after ``O(n log n)``
preprocessing (binary lifting), without ever materialising the (possibly
quadratic) edge set.  It is what the validators use to check the produced
path covers on large instances.
"""

from __future__ import annotations

from typing import Dict, Sequence, Union

import numpy as np

from .binary import BinaryCotree
from .cotree import JOIN, LEAF, Cotree

__all__ = ["CographAdjacencyOracle"]


class CographAdjacencyOracle:
    """Adjacency oracle built from a cotree (general or binary).

    Parameters
    ----------
    tree:
        a :class:`~repro.cograph.cotree.Cotree` or
        :class:`~repro.cograph.binary.BinaryCotree`.

    Notes
    -----
    The oracle works on any rooted tree whose leaves carry vertex ids and
    whose internal nodes are labelled 0/1; it does not require the canonical
    (alternating) form, so it can be used on binarized and reduced cotrees as
    well.
    """

    def __init__(self, tree: Union[Cotree, BinaryCotree]) -> None:
        if isinstance(tree, BinaryCotree):
            parent = tree.parent
            kind = tree.kind
            leaf_vertex = tree.leaf_vertex
            root = tree.root
            order = tree.preorder()
        else:
            parent = tree.parent
            kind = tree.kind
            leaf_vertex = tree.leaf_vertex
            root = tree.root
            order = list(tree.preorder())

        n = len(parent)
        self.kind = np.asarray(kind, dtype=np.int8)
        self._n_nodes = n
        depth = np.zeros(n, dtype=np.int64)
        for u in order:
            p = parent[u]
            depth[u] = 0 if p == -1 else depth[p] + 1
        self.depth = depth
        self.root = int(root)

        # binary lifting table: up[k][u] = 2^k-th ancestor of u (root maps to
        # itself so the loops below need no bounds checks).
        max_pow = max(1, int(np.ceil(np.log2(max(2, int(depth.max()) + 1)))) + 1)
        up = np.empty((max_pow, n), dtype=np.int64)
        par = np.asarray(parent, dtype=np.int64).copy()
        par[par == -1] = root
        up[0] = par
        for k in range(1, max_pow):
            up[k] = up[k - 1][up[k - 1]]
        self._up = up

        # vertex id -> leaf node id
        self._leaf_of: Dict[int, int] = {}
        for u in range(n):
            if self.kind[u] == LEAF:
                self._leaf_of[int(leaf_vertex[u])] = u
        self.num_vertices = len(self._leaf_of)

    # ------------------------------------------------------------------ #

    def lca_nodes(self, a: int, b: int) -> int:
        """LCA of two *node* ids."""
        if a == b:
            return a
        da, db = int(self.depth[a]), int(self.depth[b])
        if da < db:
            a, b, da, db = b, a, db, da
        diff = da - db
        k = 0
        while diff:
            if diff & 1:
                a = int(self._up[k, a])
            diff >>= 1
            k += 1
        if a == b:
            return a
        for k in range(self._up.shape[0] - 1, -1, -1):
            if self._up[k, a] != self._up[k, b]:
                a = int(self._up[k, a])
                b = int(self._up[k, b])
        return int(self._up[0, a])

    def lca(self, u: int, v: int) -> int:
        """LCA node of two *vertex* ids."""
        return self.lca_nodes(self._leaf_of[int(u)], self._leaf_of[int(v)])

    def adjacent(self, u: int, v: int) -> bool:
        """True when vertices ``u`` and ``v`` are adjacent in the cograph."""
        if u == v:
            return False
        return bool(self.kind[self.lca(u, v)] == JOIN)

    def path_is_valid(self, path: Sequence[int]) -> bool:
        """True when consecutive vertices of ``path`` are pairwise adjacent."""
        return all(self.adjacent(path[i], path[i + 1])
                   for i in range(len(path) - 1))
