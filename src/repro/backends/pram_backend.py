"""The reproduction-fidelity backend: full PRAM simulation.

A thin adapter putting the :class:`~repro.pram.PRAM` machine behind the
:class:`~repro.backends.base.ExecutionContext` protocol.  All accounting
semantics (Brent scheduling, EREW/CREW/CRCW conflict checking, the separate
charged-cost channel, per-step recording) are the machine's own; the backend
adds nothing on top, so numbers produced through it are exactly the numbers
the machine would report when driven directly.
"""

from __future__ import annotations

from typing import ContextManager, Optional, Union

import numpy as np

from ..pram import PRAM, AccessMode, optimal_processor_count
from .base import ExecutionContext

__all__ = ["PRAMBackend"]


class PRAMBackend(ExecutionContext):
    """Execute on the PRAM simulator (accounting + access-mode checking).

    Parameters
    ----------
    machine:
        an existing machine to account on; when omitted one is created from
        the remaining keyword arguments.
    num_processors, mode, check_conflicts, record_steps:
        forwarded to :class:`~repro.pram.PRAM` when ``machine`` is ``None``.
    """

    name = "pram"
    simulates = True

    def __init__(self, machine: Optional[PRAM] = None, *,
                 num_processors: Optional[int] = None,
                 mode: Union[AccessMode, str] = AccessMode.EREW,
                 check_conflicts: bool = True,
                 record_steps: bool = False) -> None:
        if machine is None:
            machine = PRAM(num_processors, mode,
                           check_conflicts=check_conflicts,
                           record_steps=record_steps)
        self.machine = machine

    @classmethod
    def for_input_size(cls, n: int, *,
                       record_steps: bool = False) -> "PRAMBackend":
        """The paper's Theorem 5.3 configuration: an EREW machine with
        ``ceil(n / log2 n)`` processors."""
        return cls(PRAM(optimal_processor_count(max(n, 2)), AccessMode.EREW,
                        record_steps=record_steps))

    # -- ExecutionContext ------------------------------------------------ #

    def array(self, source, dtype=np.int64, name: str = "mem"):
        return self.machine.array(source, dtype=dtype, name=name)

    def step(self, active: Optional[int] = None,
             label: str = "step") -> ContextManager:
        return self.machine.step(active=active, label=label)

    def charge(self, label: str, *, time: int, work: int) -> None:
        self.machine.charge(label, time=time, work=work)

    def report(self):
        return self.machine.report()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"PRAMBackend({self.machine!r})"
