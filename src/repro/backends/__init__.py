"""Pluggable execution backends for the parallel pipeline.

``repro`` separates *what the algorithm computes* from *how its cost is
accounted*.  Every primitive and pipeline step is written against the
:class:`ExecutionContext` protocol; the two shipped implementations are

* :class:`PRAMBackend` — the reproduction-fidelity path: full
  :class:`~repro.pram.PRAM` simulation with Brent scheduling and
  EREW/CREW/CRCW access checking;
* :class:`FastBackend` — the throughput path: pure vectorized NumPy with all
  accounting compiled away (steps are no-ops, primitives take direct
  vectorized shortcuts);
* :class:`KernelBackend` — the compiled tier: FastBackend semantics plus a
  table of fused hot-loop kernels (numba-jitted when the optional
  ``kernels`` extra is installed, exact NumPy fallbacks otherwise).

Use :func:`resolve_context` to coerce a caller-supplied value (``None``, a
backend name, a raw machine, or a context) and :func:`make_backend` to build
one by name.
"""

from .base import (
    BACKEND_NAMES,
    ContextLike,
    ExecutionContext,
    make_backend,
    resolve_context,
)
from .fast_backend import FAST_BACKEND, FastArray, FastBackend
from .kernel_backend import KernelBackend
from .pram_backend import PRAMBackend

__all__ = [
    "ExecutionContext",
    "PRAMBackend",
    "FastBackend",
    "KernelBackend",
    "FastArray",
    "FAST_BACKEND",
    "resolve_context",
    "make_backend",
    "BACKEND_NAMES",
    "ContextLike",
]
