"""The execution-context protocol that decouples *what* the algorithm
computes from *how* its cost is accounted.

Every primitive (:mod:`repro.primitives`) and every pipeline step
(:mod:`repro.core`) is written against :class:`ExecutionContext`: a small
surface of shared-array allocation, synchronous-step scoping, and cited-cost
charging.  Two implementations exist:

* :class:`~repro.backends.pram_backend.PRAMBackend` — wraps the
  :class:`~repro.pram.PRAM` simulator; every step is Brent-scheduled,
  every shared-memory access is checked against the machine's EREW/CREW/CRCW
  mode.  This is the reproduction-fidelity path: the numbers it produces are
  the paper's numbers.
* :class:`~repro.backends.fast_backend.FastBackend` — pure vectorized NumPy;
  steps and charges are no-ops and primitives are free to take vectorized
  shortcuts (``np.cumsum`` instead of the Blelloch sweep, for example).
  This is the throughput path: identical outputs, no accounting.

:func:`resolve_context` is the single coercion point.  It accepts whatever a
caller is likely to hand a primitive — ``None``, a backend name, a raw
:class:`~repro.pram.PRAM` machine (the historical calling convention), or an
already-built context — so every public function in the pipeline keeps one
permissive first parameter.
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING, ContextManager, Optional, Union

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..pram import PRAM
    from ..pram.tracing import CostReport

__all__ = ["ExecutionContext", "ContextLike", "resolve_context", "make_backend",
           "BACKEND_NAMES"]

#: the names accepted by ``backend="..."`` knobs throughout the package
BACKEND_NAMES = ("pram", "fast", "kernel")


class ExecutionContext(abc.ABC):
    """Abstract execution backend for the parallel pipeline.

    Attributes
    ----------
    name:
        short identifier (``"pram"``, ``"fast"`` or ``"kernel"``).
    simulates:
        ``True`` when per-step PRAM simulation is in effect (steps are
        accounted, shared accesses are conflict-checked).  Primitives consult
        this flag before taking vectorized shortcuts: when it is ``False``
        they may replace a multi-round simulated loop by a single NumPy
        expression, provided the output is bit-identical.
    machine:
        the underlying :class:`~repro.pram.PRAM` machine, or ``None`` when
        the backend does not simulate one.
    """

    name: str = "abstract"
    simulates: bool = True
    machine: Optional["PRAM"] = None

    # -- memory --------------------------------------------------------- #

    @abc.abstractmethod
    def array(self, source, dtype=np.int64, name: str = "mem"):
        """Allocate a shared array (int length = zero-initialised, else copy).

        The returned handle exposes ``data`` / ``gather`` / ``scatter`` /
        ``local`` / ``fill`` / ``copy_out`` — the
        :class:`~repro.pram.machine.SharedArray` surface.
        """

    # -- steps ---------------------------------------------------------- #

    @abc.abstractmethod
    def step(self, active: Optional[int] = None,
             label: str = "step") -> ContextManager:
        """Scope one synchronous parallel step (a ``with`` block)."""

    @abc.abstractmethod
    def charge(self, label: str, *, time: int, work: int) -> None:
        """Account for a cited primitive without executing it step by step."""

    # -- reporting ------------------------------------------------------ #

    def report(self) -> Optional["CostReport"]:
        """A cost snapshot, or ``None`` when the backend does not account."""
        return None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


#: anything the permissive first parameter of a primitive accepts
ContextLike = Union[None, str, "PRAM", ExecutionContext]


def make_backend(name: str, **kwargs) -> ExecutionContext:
    """Instantiate a backend by name (``"pram"``, ``"fast"`` or
    ``"kernel"``).

    Keyword arguments are forwarded to the backend constructor (e.g.
    ``num_processors=...`` / ``mode=...`` / ``record_steps=...`` for the PRAM
    backend).
    """
    from .fast_backend import FastBackend
    from .kernel_backend import KernelBackend
    from .pram_backend import PRAMBackend

    if name == "pram":
        return PRAMBackend(**kwargs)
    if name == "fast":
        if kwargs:
            raise TypeError("the fast backend takes no configuration: "
                            f"{sorted(kwargs)}")
        return FastBackend()
    if name == "kernel":
        if kwargs:
            raise TypeError("the kernel backend takes no configuration: "
                            f"{sorted(kwargs)}")
        return KernelBackend()
    raise ValueError(f"unknown backend {name!r}; expected one of "
                     f"{BACKEND_NAMES}")


def resolve_context(ctx: ContextLike) -> ExecutionContext:
    """Coerce whatever a caller passed into an :class:`ExecutionContext`.

    * ``None``             → a (shared) :class:`FastBackend` — run for the
      answer only, no accounting;
    * an ``ExecutionContext`` → returned unchanged;
    * a :class:`~repro.pram.PRAM` machine → wrapped in a
      :class:`PRAMBackend` accounting on that machine (the historical
      ``machine=...`` calling convention keeps working);
    * a string (``"pram"`` / ``"fast"`` / ``"kernel"``) → :func:`make_backend`.
    """
    if ctx is None:
        from .fast_backend import FAST_BACKEND
        return FAST_BACKEND
    if isinstance(ctx, ExecutionContext):
        return ctx
    if isinstance(ctx, str):
        return make_backend(ctx)
    from ..pram import PRAM
    if isinstance(ctx, PRAM):
        from .pram_backend import PRAMBackend
        return PRAMBackend(ctx)
    raise TypeError(
        f"cannot build an execution context from {type(ctx).__name__}; pass "
        f"None, a backend name {BACKEND_NAMES}, a PRAM machine, or an "
        f"ExecutionContext")
