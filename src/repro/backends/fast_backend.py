"""The throughput backend: raw vectorized NumPy, no simulation.

:class:`FastBackend` implements the
:class:`~repro.backends.base.ExecutionContext` protocol with zero accounting:

* :meth:`FastBackend.array` returns a :class:`FastArray` whose ``gather`` /
  ``scatter`` / ``local`` are plain fancy indexing — no address traces, no
  conflict checking, no step bookkeeping;
* :meth:`FastBackend.step` yields a shared no-op context manager;
* :meth:`FastBackend.charge` is a no-op and :meth:`FastBackend.report`
  returns ``None``.

Because ``simulates`` is ``False``, primitives are additionally licensed to
*replace their simulated loop by a direct vectorized computation* (e.g.
``np.cumsum`` for prefix sums, a raw pointer-jumping loop for list ranking).
Both paths are exercised against each other by ``tests/test_backends.py``,
which asserts bit-identical outputs across backends for every primitive and
identical covers for the end-to-end solver.

The backend is stateless; :data:`FAST_BACKEND` is the shared instance that
``resolve_context(None)`` hands out so the hot path allocates nothing.
"""

from __future__ import annotations

from contextlib import nullcontext
from typing import ContextManager, Optional

import numpy as np

from .base import ExecutionContext

__all__ = ["FastBackend", "FastArray", "FAST_BACKEND"]


class FastArray:
    """A bare NumPy array behind the ``SharedArray`` surface.

    All access methods are unchecked and unaccounted; ``gather`` / ``local``
    / ``scatter`` are ordinary fancy indexing.
    """

    __slots__ = ("data", "name")

    def __init__(self, data: np.ndarray, name: str) -> None:
        self.data = data
        self.name = name

    def __len__(self) -> int:
        return len(self.data)

    @property
    def dtype(self):
        return self.data.dtype

    def gather(self, idx) -> np.ndarray:
        return self.data[idx]

    def local(self, idx) -> np.ndarray:
        return self.data[idx]

    def scatter(self, idx, values) -> None:
        self.data[idx] = values

    def fill(self, value) -> None:
        self.data[:] = value

    def copy_out(self) -> np.ndarray:
        return self.data.copy()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"FastArray(name={self.name!r}, len={len(self.data)})"


#: a reusable no-op step scope (contextlib.nullcontext is reentrant)
_NULL_STEP = nullcontext()


class FastBackend(ExecutionContext):
    """Run the pipeline at raw NumPy speed with no cost model attached."""

    name = "fast"
    simulates = False
    machine = None

    def array(self, source, dtype=np.int64, name: str = "mem") -> FastArray:
        if isinstance(source, (int, np.integer)):
            data = np.zeros(int(source), dtype=dtype)
        else:
            data = np.array(source, dtype=dtype)
        return FastArray(data, name)

    def step(self, active: Optional[int] = None,
             label: str = "step") -> ContextManager:
        return _NULL_STEP

    def charge(self, label: str, *, time: int, work: int) -> None:
        return None


#: the shared stateless instance handed out by ``resolve_context(None)``
FAST_BACKEND = FastBackend()
