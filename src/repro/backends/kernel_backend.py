"""The compiled-kernel backend: FastBackend semantics + fused hot loops.

:class:`KernelBackend` is the third implementation of the
:class:`~repro.backends.base.ExecutionContext` protocol.  It *is* a
:class:`~repro.backends.fast_backend.FastBackend` (``simulates = False``, no
accounting, identical array surface) that additionally carries a
:class:`~repro.kernels.Kernels` table on ``self.kernels``.  Hot call sites —
the cotree-DP level sweep (:mod:`repro.core.dp`), binarize's id allocation,
the leftist swap and extract's permutation scatter — probe for that
attribute with ``getattr(ctx, "kernels", None)`` and, when present, replace
their per-pass vectorized expressions with one fused kernel call.

When numba is installed the kernels are jitted parallel loops
(``kernel_mode == "jit"``); when it is not, the table degrades to the exact
NumPy expressions the call sites would have run anyway
(``kernel_mode == "fallback"``), so ``backend="kernel"`` is always safe to
request.  Answers are bit-identical across all three backends either way —
``tests/test_kernel_backend.py`` asserts it for every registered task.
"""

from __future__ import annotations

from .fast_backend import FastBackend

__all__ = ["KernelBackend"]


class KernelBackend(FastBackend):
    """Run the pipeline through the fused-kernel tier (numba-jitted when
    available, NumPy fallback otherwise)."""

    name = "kernel"

    def __init__(self) -> None:
        # lazy import: `import repro` must not pay the numba import unless a
        # kernel backend is actually constructed
        from ..kernels import KERNELS
        self.kernels = KERNELS

    @property
    def kernel_mode(self) -> str:
        """``"jit"`` when the numba tier is live, ``"fallback"`` otherwise."""
        return self.kernels.mode
