"""A PRAM cost-model simulator.

The paper's claims are stated in the PRAM model: a collection of synchronous
processors sharing a memory, distinguished by how concurrent accesses to a
single cell are resolved (EREW, CREW, CRCW).  Real parallel execution of the
algorithm in CPython is neither possible (GIL) nor what the paper measures —
the quantities of interest are the number of *synchronous steps* (parallel
time) and the total number of elementary operations (*work*).

:class:`PRAM` therefore does three jobs:

1. **accounting** — every parallel primitive executes as a sequence of
   *steps*; a step with ``a`` active virtual processors contributes
   ``ceil(a / p)`` to the simulated time (Brent scheduling onto ``p``
   physical processors) and ``a`` to the work;
2. **access-mode checking** — the address traces declared by each step are
   checked against the machine's mode, so an algorithm that claims to be
   EREW actually is (concurrent reads raise
   :class:`~repro.pram.errors.AccessConflictError`);
3. **re-scaling** — per-step active counts are recorded, so the time on any
   other processor count can be recomputed after the fact without re-running
   the algorithm (:meth:`PRAM.time_for_processors`).

A second accounting channel, :meth:`PRAM.charge`, exists for *cited*
primitives: textbook subroutines (e.g. Cole's EREW merge sort) whose optimal
PRAM cost is established in the literature but whose faithful implementation
is outside the scope of this reproduction.  Charged costs are tracked
separately so every report can show "executed" and "cited" numbers
side by side (see DESIGN.md §2 for the honesty policy).
"""

from __future__ import annotations

import enum
import math
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Union

import numpy as np

from .errors import AccessConflictError, StepUsageError

__all__ = ["AccessMode", "PRAM", "SharedArray", "StepContext", "StepRecord"]


class AccessMode(enum.Enum):
    """Concurrent-access policy of the simulated machine."""

    #: exclusive read, exclusive write
    EREW = "EREW"
    #: concurrent read, exclusive write
    CREW = "CREW"
    #: concurrent read, concurrent write permitted only when all writers
    #: write the same value
    CRCW_COMMON = "CRCW-common"
    #: concurrent read, concurrent write, an arbitrary writer wins
    CRCW_ARBITRARY = "CRCW-arbitrary"

    @property
    def allows_concurrent_reads(self) -> bool:
        return self is not AccessMode.EREW

    @property
    def allows_concurrent_writes(self) -> bool:
        return self in (AccessMode.CRCW_COMMON, AccessMode.CRCW_ARBITRARY)


@dataclass
class StepRecord:
    """One synchronous PRAM step (or one charged primitive)."""

    label: str
    active: int
    time: int
    work: int
    reads: int = 0
    writes: int = 0
    charged: bool = False


class SharedArray:
    """A shared-memory array owned by a :class:`PRAM` machine.

    All element accesses performed through :meth:`gather` / :meth:`scatter`
    are declared to the machine's current step, which checks them against the
    access mode.  The underlying NumPy array is available as :attr:`data`
    for bulk initialisation and for reading results after an algorithm
    finishes.
    """

    __slots__ = ("machine", "data", "name")

    def __init__(self, machine: "PRAM", data: np.ndarray, name: str) -> None:
        self.machine = machine
        self.data = data
        self.name = name

    def __len__(self) -> int:
        return len(self.data)

    @property
    def dtype(self):
        return self.data.dtype

    def gather(self, idx: np.ndarray) -> np.ndarray:
        """Read ``data[idx]`` for all virtual processors of the current step."""
        idx = np.asarray(idx, dtype=np.int64)
        self.machine._declare_read(self, idx)
        return self.data[idx]

    def local(self, idx: np.ndarray) -> np.ndarray:
        """Read ``data[idx]`` as the *owning* processors' private registers.

        In the PRAM model each processor keeps the fields of the element it
        owns in local registers across steps, so re-reading your own cell is
        not a shared-memory access and cannot conflict with another
        processor's read of the same cell.  ``local`` models exactly that:
        the values are returned but not declared to the conflict checker and
        not counted as shared reads.  Only use it for owner-indexed accesses
        (processor ``i`` reading element ``i``).
        """
        idx = np.asarray(idx, dtype=np.int64)
        return self.data[idx]

    def scatter(self, idx: np.ndarray, values) -> None:
        """Write ``values`` into ``data[idx]``; one cell per virtual processor."""
        idx = np.asarray(idx, dtype=np.int64)
        values = np.asarray(values)
        self.machine._declare_write(self, idx, values)
        self.data[idx] = values

    def fill(self, value) -> None:
        """Bulk initialisation (not counted as a parallel step)."""
        self.data[:] = value

    def copy_out(self) -> np.ndarray:
        """A copy of the current contents."""
        return self.data.copy()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SharedArray(name={self.name!r}, len={len(self.data)})"


class StepContext:
    """Bookkeeping for a single synchronous step (created by :meth:`PRAM.step`)."""

    def __init__(self, machine: "PRAM", label: str, active: Optional[int]) -> None:
        self.machine = machine
        self.label = label
        self.active = active
        self._reads: Dict[int, List[np.ndarray]] = {}
        self._writes: Dict[int, List[np.ndarray]] = {}
        self._write_values: Dict[int, List[np.ndarray]] = {}
        self._arrays: Dict[int, SharedArray] = {}
        self.n_reads = 0
        self.n_writes = 0

    # -- declaration ---------------------------------------------------- #

    def declare_read(self, array: SharedArray, idx: np.ndarray) -> None:
        key = id(array)
        self._arrays[key] = array
        self._reads.setdefault(key, []).append(idx)
        self.n_reads += idx.size

    def declare_write(self, array: SharedArray, idx: np.ndarray,
                      values: np.ndarray) -> None:
        key = id(array)
        self._arrays[key] = array
        self._writes.setdefault(key, []).append(idx)
        self._write_values.setdefault(key, []).append(np.broadcast_to(values, idx.shape))
        self.n_writes += idx.size

    # -- conflict checking ---------------------------------------------- #

    def check(self, mode: AccessMode) -> None:
        if not mode.allows_concurrent_reads:
            for key, chunks in self._reads.items():
                self._check_unique(chunks, self._arrays[key], "read")
        if not mode.allows_concurrent_writes:
            for key, chunks in self._writes.items():
                self._check_unique(chunks, self._arrays[key], "write")
        elif mode is AccessMode.CRCW_COMMON:
            for key, chunks in self._writes.items():
                self._check_common(chunks, self._write_values[key],
                                   self._arrays[key])

    def _check_unique(self, chunks: List[np.ndarray], array: SharedArray,
                      what: str) -> None:
        idx = np.concatenate(chunks) if len(chunks) > 1 else chunks[0]
        if idx.size <= 1:
            return
        unique, counts = np.unique(idx, return_counts=True)
        bad = unique[counts > 1]
        if bad.size:
            raise AccessConflictError(
                f"concurrent {what} of {bad.size} cell(s) of array "
                f"{array.name!r} in step {self.label!r} (e.g. address "
                f"{int(bad[0])}) violates the "
                f"{'EREW' if what == 'read' else 'exclusive-write'} rule",
                addresses=bad[:16].tolist())

    def _check_common(self, chunks: List[np.ndarray],
                      value_chunks: List[np.ndarray],
                      array: SharedArray) -> None:
        idx = np.concatenate(chunks)
        vals = np.concatenate([np.asarray(v).ravel() for v in value_chunks])
        order = np.argsort(idx, kind="stable")
        idx_sorted = idx[order]
        vals_sorted = vals[order]
        same_as_prev = idx_sorted[1:] == idx_sorted[:-1]
        conflicting = same_as_prev & (vals_sorted[1:] != vals_sorted[:-1])
        if np.any(conflicting):
            where = np.flatnonzero(conflicting)[0]
            raise AccessConflictError(
                f"common-CRCW violation on array {array.name!r} in step "
                f"{self.label!r}: address {int(idx_sorted[where + 1])} written "
                f"with different values",
                addresses=[int(idx_sorted[where + 1])])


class PRAM:
    """The simulated machine.  See the module docstring for the model.

    Parameters
    ----------
    num_processors:
        number of physical processors for Brent scheduling; ``None`` means
        "as many as needed" (each step then costs one time unit).
    mode:
        the concurrent-access policy (:class:`AccessMode`).
    check_conflicts:
        when True (default) the address traces of every step are checked
        against ``mode``.
    record_steps:
        when True every step is kept in :attr:`steps` for detailed reports.
    """

    def __init__(
        self,
        num_processors: Optional[int] = None,
        mode: Union[AccessMode, str] = AccessMode.EREW,
        *,
        check_conflicts: bool = True,
        record_steps: bool = False,
    ) -> None:
        if isinstance(mode, str):
            mode = AccessMode(mode)
        if num_processors is not None and num_processors < 1:
            raise ValueError("num_processors must be >= 1 or None")
        self.num_processors = num_processors
        self.mode = mode
        self.check_conflicts = check_conflicts
        self.record_steps = record_steps
        self.reset()

    # ------------------------------------------------------------------ #
    # factories
    # ------------------------------------------------------------------ #

    @classmethod
    def null(cls) -> "PRAM":
        """A machine with checking and recording disabled — used when an
        algorithm is run purely for its output."""
        return cls(None, AccessMode.CRCW_ARBITRARY, check_conflicts=False,
                   record_steps=False)

    @classmethod
    def erew(cls, n: int, *, record_steps: bool = False) -> "PRAM":
        """The paper's machine: an EREW PRAM with ``ceil(n / log2 n)``
        processors for an input of size ``n``."""
        p = optimal_processor_count(n)
        return cls(p, AccessMode.EREW, record_steps=record_steps)

    # ------------------------------------------------------------------ #
    # state
    # ------------------------------------------------------------------ #

    def reset(self) -> None:
        """Clear all accounting."""
        self.time = 0
        self.work = 0
        self.rounds = 0
        self.charged_time = 0
        self.charged_work = 0
        self.steps: List[StepRecord] = []
        self._active_counts: List[int] = []
        self._charged_records: List[StepRecord] = []
        self._current: Optional[StepContext] = None

    # ------------------------------------------------------------------ #
    # memory
    # ------------------------------------------------------------------ #

    def array(self, source, dtype=np.int64, name: str = "mem") -> SharedArray:
        """Allocate a shared array.

        ``source`` is either an integer length (zero-initialised) or an
        array-like whose contents are copied in.
        """
        if isinstance(source, (int, np.integer)):
            data = np.zeros(int(source), dtype=dtype)
        else:
            data = np.array(source, dtype=dtype)
        return SharedArray(self, data, name)

    # ------------------------------------------------------------------ #
    # steps
    # ------------------------------------------------------------------ #

    @contextmanager
    def step(self, active: Optional[int] = None, label: str = "step") -> Iterator[StepContext]:
        """Context manager for one synchronous step.

        ``active`` is the number of virtual processors participating; when
        omitted it is inferred as the maximum of the declared read/write
        sizes.  All :meth:`SharedArray.gather`/:meth:`SharedArray.scatter`
        calls made inside the ``with`` block belong to this step.
        """
        if self._current is not None:
            raise StepUsageError("PRAM steps cannot be nested")
        ctx = StepContext(self, label, active)
        self._current = ctx
        try:
            yield ctx
        finally:
            self._current = None
        if self.check_conflicts:
            ctx.check(self.mode)
        a = ctx.active
        if a is None:
            a = max(ctx.n_reads, ctx.n_writes, 1)
        self._account(label, int(a), ctx.n_reads, ctx.n_writes)

    def _account(self, label: str, active: int, reads: int, writes: int) -> None:
        t = 1 if self.num_processors is None else math.ceil(active / self.num_processors)
        t = max(t, 1)
        self.time += t
        self.work += active
        self.rounds += 1
        self._active_counts.append(active)
        if self.record_steps:
            self.steps.append(StepRecord(label, active, t, active, reads, writes))

    def charge(self, label: str, *, time: int, work: int) -> None:
        """Account for a *cited* primitive without executing it step by step.

        The cost is tracked separately from executed steps so reports can
        distinguish the two channels.
        """
        self.charged_time += int(time)
        self.charged_work += int(work)
        rec = StepRecord(label, 0, int(time), int(work), charged=True)
        self._charged_records.append(rec)
        if self.record_steps:
            self.steps.append(rec)

    # ------------------------------------------------------------------ #
    # declarations (called by SharedArray)
    # ------------------------------------------------------------------ #

    def _declare_read(self, array: SharedArray, idx: np.ndarray) -> None:
        if self._current is None:
            raise StepUsageError(
                f"gather on {array.name!r} outside of a machine step")
        self._current.declare_read(array, idx)

    def _declare_write(self, array: SharedArray, idx: np.ndarray,
                       values: np.ndarray) -> None:
        if self._current is None:
            raise StepUsageError(
                f"scatter on {array.name!r} outside of a machine step")
        self._current.declare_write(array, idx, values)

    # ------------------------------------------------------------------ #
    # reporting
    # ------------------------------------------------------------------ #

    def time_for_processors(self, p: int) -> int:
        """Simulated time had the same algorithm run on ``p`` processors
        (Brent's scheduling principle applied to the recorded steps)."""
        if p < 1:
            raise ValueError("p must be >= 1")
        return int(sum(math.ceil(a / p) for a in self._active_counts))

    @property
    def total_time(self) -> int:
        """Executed plus charged time."""
        return self.time + self.charged_time

    @property
    def total_work(self) -> int:
        """Executed plus charged work."""
        return self.work + self.charged_work

    def report(self):
        """A :class:`~repro.pram.tracing.CostReport` snapshot of the counters."""
        from .tracing import CostReport
        return CostReport.from_machine(self)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        p = "inf" if self.num_processors is None else str(self.num_processors)
        return (f"PRAM(mode={self.mode.value}, p={p}, rounds={self.rounds}, "
                f"time={self.time}, work={self.work})")


def optimal_processor_count(n: int) -> int:
    """``ceil(n / log2 n)`` — the processor count of the paper's Theorem 5.3."""
    if n <= 2:
        return 1
    return max(1, math.ceil(n / math.log2(n)))
