"""Exception types raised by the PRAM simulator."""

from __future__ import annotations

__all__ = ["PRAMError", "AccessConflictError", "StepUsageError"]


class PRAMError(RuntimeError):
    """Base class for PRAM simulator errors."""


class AccessConflictError(PRAMError):
    """A memory access pattern violated the machine's access mode.

    Raised, for example, when two virtual processors read the same cell in a
    single EREW step, or write different values to the same cell in a
    common-CRCW step.
    """

    def __init__(self, message: str, addresses=None):
        super().__init__(message)
        #: the offending addresses (possibly truncated), for diagnostics.
        self.addresses = addresses


class StepUsageError(PRAMError):
    """A shared array was accessed outside a step, steps were nested
    incorrectly, or a step was given inconsistent metadata."""
