"""Cost reports and per-label breakdowns for the PRAM simulator."""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Optional

__all__ = ["CostReport", "LabelCost"]


@dataclass
class LabelCost:
    """Aggregated cost of all steps sharing a label."""

    label: str
    rounds: int = 0
    time: int = 0
    work: int = 0
    charged: bool = False

    def add(self, time: int, work: int) -> None:
        self.rounds += 1
        self.time += time
        self.work += work


@dataclass
class CostReport:
    """A snapshot of a :class:`~repro.pram.machine.PRAM` machine's counters.

    Attributes
    ----------
    mode:
        access mode name ("EREW", ...).
    num_processors:
        configured processor count (``None`` = unbounded).
    rounds:
        number of executed synchronous steps.
    time, work:
        executed time and work (Brent-scheduled).
    charged_time, charged_work:
        costs charged for cited primitives (see ``PRAM.charge``).
    by_label:
        per-label aggregation when the machine recorded steps.
    """

    mode: str
    num_processors: Optional[int]
    rounds: int
    time: int
    work: int
    charged_time: int
    charged_work: int
    by_label: Dict[str, LabelCost] = field(default_factory=dict)

    # ------------------------------------------------------------------ #

    @classmethod
    def from_machine(cls, machine) -> "CostReport":
        by_label: Dict[str, LabelCost] = {}
        for rec in machine.steps:
            entry = by_label.setdefault(
                rec.label, LabelCost(rec.label, charged=rec.charged))
            entry.add(rec.time, rec.work)
        return cls(
            mode=machine.mode.value,
            num_processors=machine.num_processors,
            rounds=machine.rounds,
            time=machine.time,
            work=machine.work,
            charged_time=machine.charged_time,
            charged_work=machine.charged_work,
            by_label=by_label,
        )

    # ------------------------------------------------------------------ #

    @property
    def total_time(self) -> int:
        """Executed plus charged time."""
        return self.time + self.charged_time

    @property
    def total_work(self) -> int:
        """Executed plus charged work."""
        return self.work + self.charged_work

    def to_dict(self) -> dict:
        """Plain-dict form (used by the experiment harness for tables)."""
        return {
            "mode": self.mode,
            "num_processors": self.num_processors,
            "rounds": self.rounds,
            "time": self.time,
            "work": self.work,
            "charged_time": self.charged_time,
            "charged_work": self.charged_work,
            "total_time": self.total_time,
            "total_work": self.total_work,
        }

    def to_json_dict(self) -> dict:
        """Round-trippable dict form, including the per-label breakdown."""
        out = self.to_dict()
        del out["total_time"], out["total_work"]  # derived
        out["by_label"] = {
            label: {"rounds": c.rounds, "time": c.time, "work": c.work,
                    "charged": c.charged}
            for label, c in self.by_label.items()
        }
        return out

    @classmethod
    def from_json_dict(cls, data: dict) -> "CostReport":
        """Inverse of :meth:`to_json_dict`."""
        by_label = {label: LabelCost(label=label, **costs)
                    for label, costs in data.get("by_label", {}).items()}
        return cls(mode=data["mode"],
                   num_processors=data["num_processors"],
                   rounds=data["rounds"], time=data["time"],
                   work=data["work"], charged_time=data["charged_time"],
                   charged_work=data["charged_work"], by_label=by_label)

    def __str__(self) -> str:
        p = "unbounded" if self.num_processors is None else self.num_processors
        lines = [
            f"PRAM cost report ({self.mode}, p={p})",
            f"  executed: {self.rounds} rounds, time={self.time}, work={self.work}",
        ]
        if self.charged_time or self.charged_work:
            lines.append(f"  charged (cited primitives): time={self.charged_time}, "
                         f"work={self.charged_work}")
            lines.append(f"  total: time={self.total_time}, work={self.total_work}")
        if self.by_label:
            lines.append("  by label:")
            for label, cost in sorted(self.by_label.items(),
                                      key=lambda kv: -kv[1].work):
                tag = " (charged)" if cost.charged else ""
                lines.append(f"    {label:<28s} rounds={cost.rounds:<6d} "
                             f"time={cost.time:<8d} work={cost.work}{tag}")
        return "\n".join(lines)
