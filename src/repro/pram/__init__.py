"""PRAM cost-model simulator: machines, shared arrays, cost reports.

The simulator is the substitute for the abstract parallel machine the paper's
results are stated on; see DESIGN.md §2 for the substitution rationale and
the accounting/honesty policy.
"""

from .errors import AccessConflictError, PRAMError, StepUsageError
from .machine import AccessMode, PRAM, SharedArray, StepContext, StepRecord, optimal_processor_count
from .tracing import CostReport, LabelCost

__all__ = [
    "AccessMode",
    "PRAM",
    "SharedArray",
    "StepContext",
    "StepRecord",
    "CostReport",
    "LabelCost",
    "PRAMError",
    "AccessConflictError",
    "StepUsageError",
    "optimal_processor_count",
]
