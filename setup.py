"""Setuptools shim.

The project metadata lives in ``pyproject.toml``; this file exists so that
``pip install -e .`` works in fully offline environments that lack the
``wheel`` package required by the PEP 517 editable-install path.
"""
from setuptools import setup

setup()
