#!/usr/bin/env python
"""Quickstart: build a cograph, find a minimum path cover, inspect the cost.

Run with:  python examples/quickstart.py
"""

from repro import (
    Graph,
    cotree_from_graph,
    minimum_path_cover_parallel,
    minimum_path_cover_size,
    random_cotree,
    sequential_path_cover,
    solve_batch,
)
from repro.io import render_cotree, render_cover


def main() -> None:
    # -- 1. a cograph can come from a generator ... ----------------------- #
    tree = random_cotree(24, seed=7, join_prob=0.55)
    print("The cotree of a random 24-vertex cograph:")
    print(render_cotree(tree))
    print()

    # -- ... or from an explicit graph via recognition -------------------- #
    graph = Graph.from_cotree(tree)          # any P4-free edge list works
    tree_again = cotree_from_graph(graph)
    assert Graph.from_cotree(tree_again) == graph

    # -- 2. the paper's parallel algorithm -------------------------------- #
    result = minimum_path_cover_parallel(tree, validate=True)
    print(f"minimum path cover size: {result.num_paths} "
          f"(analytic p(root) = {minimum_path_cover_size(tree)})")
    print(render_cover(result.cover))
    print()

    # -- 3. the PRAM cost report ------------------------------------------ #
    print("Simulated PRAM cost (EREW, p = ceil(n / log2 n)):")
    print(result.report)
    print()

    # -- 4. the sequential reference agrees ------------------------------- #
    sequential = sequential_path_cover(tree)
    assert sequential.num_paths == result.num_paths
    print(f"sequential Lin-Olariu-Pruesse algorithm: "
          f"{sequential.num_paths} paths (agrees)")
    print()

    # -- 5. the fast backend: same cover, no simulation ------------------- #
    fast = minimum_path_cover_parallel(tree, backend="fast")
    assert fast.cover.paths == result.cover.paths
    slowest = max(fast.stage_seconds, key=fast.stage_seconds.get)
    print(f"fast backend agrees; slowest pipeline stage was {slowest!r}")

    # -- 6. batches of instances ------------------------------------------ #
    batch = solve_batch([random_cotree(40, seed=s) for s in range(6)])
    print(f"solve_batch: covers of sizes "
          f"{[r.num_paths for r in batch]} for 6 random instances")


if __name__ == "__main__":
    main()
