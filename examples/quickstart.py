#!/usr/bin/env python
"""Quickstart: one front door — solve() — for every task and input form.

Run with:  python examples/quickstart.py
"""

from repro import Graph, SolveOptions, random_cotree, solve, solve_many
from repro.io import render_cotree, render_cover


def main() -> None:
    # -- 1. a cograph can come from a generator ... ----------------------- #
    tree = random_cotree(24, seed=7, join_prob=0.55)
    print("The cotree of a random 24-vertex cograph:")
    print(render_cotree(tree))
    print()

    # -- ... or from any other form solve() understands ------------------- #
    graph = Graph.from_cotree(tree)          # any P4-free edge list works
    assert solve(graph, task="recognition").answer is True
    assert solve("(0 + (1 * 2))").num_paths == 2          # cotree text
    assert solve({0: [1], 1: [0]}).num_paths == 1         # adjacency dict

    # -- 2. the paper's parallel algorithm -------------------------------- #
    result = solve(tree, validate=True)      # backend="pram" is the default
    print(f"minimum path cover size: {result.num_paths} "
          f"(analytic p(root) = {solve(tree, task='path_cover_size').answer})")
    print(render_cover(result.cover))
    print()

    # -- 3. the PRAM cost report ------------------------------------------ #
    print("Simulated PRAM cost (EREW, p = ceil(n / log2 n)):")
    print(result.report)
    print()

    # -- 4. the sequential reference agrees ------------------------------- #
    sequential = solve(tree, options=SolveOptions(method="sequential"))
    assert sequential.num_paths == result.num_paths
    print(f"sequential Lin-Olariu-Pruesse algorithm: "
          f"{sequential.num_paths} paths (agrees)")
    print()

    # -- 5. the fast backend: same cover, no simulation ------------------- #
    fast = solve(tree, backend="fast")
    assert fast.cover.paths == result.cover.paths
    slowest = max(fast.stage_seconds, key=fast.stage_seconds.get)
    print(f"fast backend agrees; slowest pipeline stage was {slowest!r}")

    # -- 6. Hamiltonicity is just another task ---------------------------- #
    ring = solve("((0 + 1) * (2 + 3))", task="hamiltonian_cycle")  # C4
    assert ring.ok
    print(f"hamiltonian_cycle witness on the 4-cycle: {ring.answer}")

    # -- 7. batches of instances ------------------------------------------ #
    batch = solve_many([random_cotree(40, seed=s) for s in range(6)],
                       backend="fast")
    print(f"solve_many: covers of sizes "
          f"{[r.num_paths for r in batch]} for 6 random instances")

    # -- 8. every solution serialises ------------------------------------- #
    payload = result.to_json_dict()
    assert payload["task"] == "path_cover"
    print(f"solution JSON keys: {sorted(payload)}")


if __name__ == "__main__":
    main()
