#!/usr/bin/env python
"""Mapping a series-parallel task system onto pipeline lanes.

Second application scenario from the paper's introduction ("mapping parallel
programs to parallel architectures", "code optimization"):

* a build/ETL system is described by series and parallel composition of task
  groups; two tasks can share a pipeline *lane* slot boundary iff they are
  composed in series (may exchange data directly) — again a cograph;
* one pipeline lane executes a chain of pairwise-compatible tasks, so the
  minimum number of lanes that covers all tasks is a minimum path cover;
* the example sweeps the amount of parallel fan-out and shows the lane count
  react exactly as the ``max(p(v) − L(w), 1)`` recurrence predicts, crossing
  over from "fits into one lane" to "needs fan-out - reserve lanes".

Run with:  python examples/program_mapping.py
"""

from repro import (
    independent_set,
    join_cotrees,
    minimum_path_cover_size,
    solve,
    union_cotrees,
)
from repro.analysis import format_table
from repro.cograph import relabel_disjoint


def stage(width: int):
    """A parallel stage of `width` mutually independent tasks."""
    return independent_set(width)


def series(*stages):
    """Series composition: every task of one stage can hand over to every
    task of the next (join)."""
    return join_cotrees(*relabel_disjoint(list(stages)))


def parallel(*blocks):
    """Parallel composition: independent sub-pipelines (union)."""
    return union_cotrees(*relabel_disjoint(list(blocks)))


def main() -> None:
    rows = []
    for fanout in range(2, 11):
        # a pre-processing stage of 3 tasks, a wide map stage, a reduce stage
        # of 2 tasks, composed in series; plus an independent logging block.
        pipeline = series(stage(3), stage(fanout), stage(2))
        system = parallel(pipeline, stage(2))
        result = solve(system)
        rows.append({
            "map fan-out": fanout,
            "tasks": system.num_vertices,
            "lanes needed": result.num_paths,
            "analytic prediction": minimum_path_cover_size(system),
            "PRAM rounds": result.report.rounds,
        })
        assert result.num_paths == minimum_path_cover_size(system)
    print(format_table(rows, title="pipeline lanes vs map fan-out"))

    # show one concrete assignment for the widest configuration
    pipeline = series(stage(3), stage(10), stage(2))
    system = parallel(pipeline, stage(2))
    cover = solve(system, method="sequential").cover
    print("\nlane assignment for fan-out 10 (one line per lane):")
    for i, lane in enumerate(cover.paths, 1):
        print(f"  lane {i}: tasks {lane}")


if __name__ == "__main__":
    main()
