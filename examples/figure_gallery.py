#!/usr/bin/env python
"""Regenerate the paper's worked figures (F1-F12 of DESIGN.md) in text form.

Run with:  python examples/figure_gallery.py
"""

import numpy as np

from repro.cograph import (
    CographAdjacencyOracle,
    Cotree,
    Graph,
    binarize_cotree,
    independent_set,
    join_cotrees,
    minimum_path_cover_size,
    single_vertex,
    union_cotrees,
)
from repro.core import (
    binarize_parallel,
    build_pseudo_forest,
    expected_path_count,
    extract_paths,
    generate_brackets,
    leftist_reorder,
    legalize_forest,
    minimum_path_cover_parallel,
    or_instance_cotree,
    reduce_cotree,
    remove_dummies,
    render_brackets,
)
from repro.core.reduce import VertexClass
from repro.io import render_binary_cotree, render_cotree, render_cover, render_forest


def header(title: str) -> None:
    print("\n" + "=" * 72)
    print(title)
    print("=" * 72)


def figure_1() -> None:
    header("Figure 1 - a cograph and its cotree")
    tree = Cotree.from_nested(
        ("join", ("union", 0, 1, ("join", 2, 3)), ("union", 4, ("join", 5, 6)), 7))
    print(render_cotree(tree, names=list("abcdefgh")))
    g = Graph.from_cotree(tree)
    print(f"\nedges ({g.num_edges()}): "
          + " ".join(f"{'abcdefgh'[u]}{'abcdefgh'[v]}" for u, v in g.edges()))


def figure_2() -> None:
    header("Figure 2 - the lower-bound cotree for bits 0,0,0,0,0,1,0,1")
    bits = [0, 0, 0, 0, 0, 1, 0, 1]
    inst = or_instance_cotree(bits)
    names = [f"a{i+1}" for i in range(8)] + ["x", "y", "z"]
    print(render_cotree(inst.cotree, names=names))
    cover = minimum_path_cover_parallel(inst.cotree).cover
    print(f"\nminimum path cover has {cover.num_paths} paths "
          f"(= n - k + 2 = {expected_path_count(bits)})")
    print(render_cover(cover, names=names))


def figure_3() -> None:
    header("Figure 3 - binarizing a node with many children")
    tree = Cotree.from_nested(("union", 0, 1, 2, 3))
    print("before:")
    print(render_cotree(tree))
    print("\nafter (left-deep chain):")
    print(render_binary_cotree(binarize_cotree(tree)))


def figure_4_7_8() -> None:
    header("Figures 4, 7, 8 - Case 1 and Case 2 at a 1-node")
    case1 = join_cotrees(independent_set(4),
                         independent_set(2).relabel_vertices({0: 4, 1: 5}))
    cover1 = minimum_path_cover_parallel(case1).cover
    print("Case 1: p(v)=4 > L(w)=2 -> bridge all of G(w); "
          f"{cover1.num_paths} paths")
    print(render_cover(cover1))
    case2 = join_cotrees(independent_set(3),
                         independent_set(4).relabel_vertices(
                             {i: 3 + i for i in range(4)}))
    cover2 = minimum_path_cover_parallel(case2).cover
    print("\nCase 2: p(v) <= L(w) -> bridges + inserted vertices; "
          f"{cover2.num_paths} path")
    print(render_cover(cover2))


def fig10_cotree():
    ab = join_cotrees(single_vertex(0), single_vertex(1))
    left = union_cotrees(ab, single_vertex(2))
    right = independent_set(3).relabel_vertices({0: 3, 1: 4, 2: 5})
    return join_cotrees(left, right)


def figures_5_and_10() -> None:
    header("Figures 5 & 10 - reduced cotree, bracket sequence and matching")
    tree = fig10_cotree()
    names = list("abcdef")
    print(render_cotree(tree, names=names))
    lf = leftist_reorder(None, binarize_parallel(None, tree))
    red = reduce_cotree(None, lf)
    cls = {VertexClass.PRIMARY: "primary", VertexClass.BRIDGE: "bridge",
           VertexClass.INSERT: "insert"}
    print("\nvertex classification:")
    for v in range(6):
        print(f"  {names[v]}: {cls[int(red.vertex_class[v])]}")
    seq = generate_brackets(None, red)
    print("\nbracket sequence B(R) (with dummy vertices):")
    print(" " + render_brackets(seq, names=names))


def figures_6_9_11() -> None:
    header("Figures 6, 9, 11 - pseudo path trees, dummies, and the final path")
    tree = fig10_cotree()
    names = list("abcdef")
    lf = leftist_reorder(None, binarize_parallel(None, tree))
    red = reduce_cotree(None, lf)
    seq = generate_brackets(None, red)
    forest = build_pseudo_forest(None, seq)
    print("pseudo path trees (before legalisation, dummies shown as d1, d2):")
    print(render_forest(forest, names=names))
    forest, exchanges = legalize_forest(None, forest, red)
    forest = remove_dummies(None, forest)
    cover = extract_paths(None, forest)
    print(f"\nafter {exchanges} exchange(s) and dummy removal:")
    print(render_cover(cover, names=names))
    oracle = CographAdjacencyOracle(tree)
    assert all(oracle.path_is_valid(p) for p in cover.paths)


def figure_12() -> None:
    header("Figure 12 - the slot-capacity argument")
    tree = fig10_cotree()
    lf = leftist_reorder(None, binarize_parallel(None, tree))
    red = reduce_cotree(None, lf)
    t = red.tree
    for u in red.active_join_nodes():
        p_v = int(red.p[t.left[u]])
        L_w = int(red.leaf_count[t.right[u]])
        L_v = int(red.leaf_count[t.left[u]])
        if p_v <= L_w:
            demand = (L_w - p_v + 1) + (2 * p_v - 2)
            capacity = L_v + p_v - 1
            print(f"1-node {u}: inserts+dummies = {demand} <= "
                  f"L(v)+p(v)-1 = {capacity}")


def main() -> None:
    figure_1()
    figure_2()
    figure_3()
    figure_4_7_8()
    figures_5_and_10()
    figures_6_9_11()
    figure_12()
    print("\nall figures regenerated.")


if __name__ == "__main__":
    main()
