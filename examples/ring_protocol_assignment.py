#!/usr/bin/env python
"""Ring-protocol / broadcast-schedule assignment on a compatibility cograph.

The paper's introduction lists ring protocols and mapping parallel programs
onto architectures among the applications of path covers.  This example plays
that scenario out end to end:

* a distributed system has stations grouped into *clusters*; two stations can
  hold a direct token-passing link iff their clusters are compatible.  The
  compatibility relation is built from series (join) and parallel (union)
  composition of clusters — which is exactly a cograph;
* a token-ring schedule is a set of vertex-disjoint chains covering every
  station; fewer chains means fewer ring controllers, so the minimum path
  cover is the cheapest schedule;
* when the cover is a single path (and the cycle condition holds) the whole
  system can run one closed token ring — the Hamiltonian cycle corollary.

Run with:  python examples/ring_protocol_assignment.py
"""

from repro import (
    CographAdjacencyOracle,
    clique,
    independent_set,
    join_cotrees,
    solve,
    union_cotrees,
)
from repro.cograph import relabel_disjoint
from repro.io import render_cover


def build_compatibility_cograph():
    """Three sites; stations inside a rack are mutually incompatible (they
    share one transceiver), racks within a site are fully compatible, and the
    two primary sites are compatible with each other but not with the
    isolated archive site."""
    # site A: two racks of 3 and 2 stations
    site_a = join_cotrees(independent_set(3), independent_set(2), relabel=True)
    # site B: a rack of 4 stations plus one gateway compatible with all of them
    site_b = join_cotrees(independent_set(4), clique(1), relabel=True)
    # archive site: two standalone stations that only talk to each other
    archive = clique(2)
    # sites A and B are bridged (join); the archive is isolated (union)
    site_a, site_b, archive = relabel_disjoint([site_a, site_b, archive])
    return union_cotrees(join_cotrees(site_a, site_b), archive)


def main() -> None:
    tree = build_compatibility_cograph()
    n = tree.num_vertices
    print(f"compatibility cograph over {n} stations, "
          f"{tree.edge_count()} compatible pairs")

    result = solve(tree, validate=True)
    print(f"\nminimum number of token chains: {result.num_paths}")
    print(render_cover(result.cover, names=[f"st{i}" for i in range(n)]))

    oracle = CographAdjacencyOracle(tree)
    for i, path in enumerate(result.cover.paths, 1):
        assert oracle.path_is_valid(path)
        print(f"chain {i}: {len(path)} stations, controller at st{path[0]}")

    # can the two bridged sites run one closed ring on their own?
    bridged = join_cotrees(
        join_cotrees(independent_set(3), independent_set(2), relabel=True),
        join_cotrees(independent_set(4), clique(1), relabel=True),
        relabel=True)
    ring = solve(bridged, task="hamiltonian_cycle")
    if ring.ok:
        cycle = ring.answer
        print(f"\nsites A+B can run a single closed token ring of "
              f"{len(cycle)} stations:")
        print(" -> ".join(f"st{v}" for v in cycle) + f" -> st{cycle[0]}")
    else:
        print("\nsites A+B cannot run a single closed ring")

    print(f"\nsimulated PRAM cost: {result.report.rounds} rounds, "
          f"work {result.report.work}")


if __name__ == "__main__":
    main()
