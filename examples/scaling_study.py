#!/usr/bin/env python
"""Scaling study: simulated parallel time/work vs the sequential baseline.

A compact, self-contained version of benchmarks E4/E5/E7 meant for a quick
interactive look (the benchmark harness regenerates the full tables).

Run with:  python examples/scaling_study.py  [max_exponent]
"""

import sys

from repro import random_cotree, solve
from repro.analysis import best_model, compute_metrics, format_table, log2ceil
from repro.baselines import naive_parallel_path_cover, sequential_path_cover
from repro.cograph import caterpillar_cotree
from repro.pram import optimal_processor_count


def main(max_exp: int = 12) -> None:
    rows = []
    for k in range(6, max_exp + 1):
        n = 2 ** k
        tree = random_cotree(n, seed=n, join_prob=0.5)
        result = solve(tree)
        _, stats = sequential_path_cover(tree, return_stats=True)
        metrics = compute_metrics(n, result.report.time, result.report.work,
                                  optimal_processor_count(n),
                                  sequential_time=stats.total_operations)
        rows.append({
            "n": n,
            "rounds": result.report.rounds,
            "rounds/log2 n": round(result.report.rounds / log2ceil(n), 1),
            "work/n": round(metrics.work_per_n, 1),
            "speedup": round(metrics.speedup, 1),
            "efficiency": round(metrics.efficiency, 3),
        })
    print(format_table(rows, title="paper's algorithm on random cotrees"))
    fit = best_model([r["n"] for r in rows], [r["rounds"] for r in rows],
                     models=["1", "log n", "log^2 n", "sqrt n", "n"])
    print(f"\nbest-fit growth of the round count: {fit}")

    # the naive parallelisation on its worst case
    rows2 = []
    for k in range(6, min(max_exp, 11) + 1):
        n = 2 ** k
        tree = caterpillar_cotree(n)
        optimal = solve(tree)
        _, naive = naive_parallel_path_cover(tree)
        rows2.append({
            "n": n,
            "optimal (this paper) time": optimal.report.time,
            "naive level-by-level time": naive.time,
            "naive / optimal": round(naive.time / max(optimal.report.time, 1), 2),
        })
    print()
    print(format_table(rows2,
                       title="caterpillar cotrees: naive parallelisation "
                             "degenerates, the bracket algorithm does not"))


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 12)
